"""Algorithm 1: local mutual exclusion with recoloring (Chapter 5).

The pipeline (Figure 5): a hungry node that moved since it last held a
legal color enters the recoloring double doorway (``ADr`` around
``SDr``), runs a coloring procedure behind it, then — while still
behind ``SDr`` — enters the fork-collection asynchronous doorway
``ADf``, exits the recoloring doorways, enters the fork-collection
synchronous doorway ``SDf`` (which has a return path), and collects
forks.  A hungry node that did not move skips straight to ``ADf``.

Priorities are colors: smaller color = higher priority.  The recoloring
module produces strictly negative colors (Line 38) while the exit code
of the critical section picks the smallest free color in ``[0, delta]``
(Line 6), so recolored (recently moved) nodes hold priority but are
fenced off by the doorways until standing competitors finish.

Link dynamics follow Algorithm 3: a static node adopts the new fork and
sends its color and doorway status to the newcomer (Lines 44-46); a
moving node abandons everything, waits for its new neighbors' state,
and restarts from the recoloring entry (Lines 47-55); link failure may
trigger the return path of ``SDf`` (Lines 56-61, the Figure 6 scenario).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.base import LocalMutexAlgorithm, NodeServices
from repro.core.coloring.session import ColoringProcedure, ColoringSession
from repro.core.dispatch import MessageDispatchMixin, handles
from repro.core.doorway import (
    FORK_ASYNC,
    FORK_SYNC,
    RECOLOR_ASYNC,
    RECOLOR_SYNC,
    DoorwaySet,
)
from repro.core.fork_collection import ForkProtocol
from repro.core.forks import ForkTable
from repro.core.messages import (
    DoorwayCross,
    DoorwayExit,
    ForkGrant,
    ForkRequest,
    Hello,
    RecolorNack,
    RecoloringRound,
    UpdateColor,
)
from repro.core.states import NodeState
from repro.net.messages import Message


class Algorithm1(MessageDispatchMixin, LocalMutexAlgorithm):
    """The first algorithm (Chapters 4-5)."""

    name = "alg1"

    def __init__(
        self,
        node: NodeServices,
        coloring: ColoringProcedure,
        initial_colors: Optional[Dict[int, int]] = None,
    ) -> None:
        """
        Args:
            node: host node services.
            coloring: the recoloring procedure (greedy or Linial).
            initial_colors: an optional pre-assigned legal coloring of
                the whole network (node id -> color).  ``None`` (the
                default) makes every node recolor before first
                competing, which is how the paper obtains initial
                colors; passing a legal coloring reproduces the static
                Choy-Singh setting.
        """
        super().__init__(node)
        self.coloring = coloring
        self._initial_colors = initial_colors
        initial_color: Optional[int] = None
        if initial_colors is not None:
            initial_color = initial_colors.get(node.node_id)
        self.my_color: Optional[int] = initial_color
        #: Last known colors of neighbors (None = undefined, the paper's ⊥).
        self.colors: Dict[int, Optional[int]] = {}
        self.forks = ForkTable()
        self.fork_proto = ForkProtocol(self)
        self.doorways = DoorwaySet(node, self._on_crossed)
        self.session: Optional[ColoringSession] = None
        #: True when the node must recolor before competing again.
        self.needs_recolor = initial_color is None
        #: New static neighbors whose Hello we are waiting for (Line 53).
        self.pending_hellos: Set[int] = set()
        #: Counters for experiments.
        self.recolor_runs = 0
        self.return_paths_taken = 0
        # Telemetry (None when the run is uninstrumented).
        self._probes = getattr(node, "probes", None)
        self._recolor_started: Optional[float] = None

    # ------------------------------------------------------------------
    # Bootstrap (initial topology, before the run starts)
    # ------------------------------------------------------------------
    def bootstrap_peer(self, peer: int) -> None:
        """Install initial per-link state for a pre-existing neighbor.

        Initial fork placement follows the paper: ``at[j]`` is true when
        our ID is smaller.  Neighbor colors come from the optional
        initial coloring, else are undefined until the neighbor colors
        itself.
        """
        self.forks.set_holds(peer, self.node_id < peer)
        if self._initial_colors is not None:
            self.colors[peer] = self._initial_colors.get(peer)
        else:
            self.colors[peer] = None

    # ------------------------------------------------------------------
    # ForkHost interface
    # ------------------------------------------------------------------
    def is_low(self, peer: int) -> bool:
        """Low neighbor = strictly smaller (higher-priority) color.

        Neighbors with undefined color are not competing (they are
        movers awaiting recoloring, fenced off by the doorways) and are
        classified high.
        """
        peer_color = self.colors.get(peer)
        if peer_color is None or self.my_color is None:
            return False
        return peer_color < self.my_color

    def collecting(self) -> bool:
        return (
            self.doorways.is_behind(FORK_SYNC)
            and self.node.state is NodeState.HUNGRY
        )

    def bypass_grants(self) -> bool:
        return not self.doorways.is_behind(FORK_SYNC)

    def want_back(self, peer: int) -> bool:
        return self.is_low(peer) and self.doorways.is_behind(FORK_SYNC)

    def enter_cs(self) -> None:
        self.node.start_eating()

    # ------------------------------------------------------------------
    # Application upcalls
    # ------------------------------------------------------------------
    def on_hungry(self) -> None:
        self._maybe_start_pipeline()

    def on_exit_cs(self) -> None:
        """Lines 5-9: recolor greedily, grant suspensions, exit doorways."""
        used = {c for c in self.colors.values() if c is not None}
        color = 0
        while color in used:
            color += 1
        self.my_color = color
        self.needs_recolor = False
        self.node.broadcast(UpdateColor(color))
        self.fork_proto.grant_suspended()
        self.doorways.exit(FORK_SYNC)
        self.doorways.exit(FORK_ASYNC)
        self.fork_proto.clear_requests()
        self._trace("alg1.cs_exit", color=color)

    # ------------------------------------------------------------------
    # Pipeline control
    # ------------------------------------------------------------------
    def _pipeline_active(self) -> bool:
        if self.session is not None:
            return True
        for doorway in (RECOLOR_ASYNC, RECOLOR_SYNC, FORK_ASYNC, FORK_SYNC):
            if self.doorways.is_behind(doorway) or self.doorways.is_waiting(doorway):
                return True
        return False

    def _maybe_start_pipeline(self) -> None:
        if self.node.state is not NodeState.HUNGRY:
            return
        if self.pending_hellos or self._pipeline_active():
            return
        if self.needs_recolor or self.my_color is None:
            self._trace("alg1.enter", stage="recolor")
            self.doorways.start_entry(RECOLOR_ASYNC)
        else:
            self._trace("alg1.enter", stage="fork")
            self.doorways.start_entry(FORK_ASYNC)

    def _on_crossed(self, doorway: str) -> None:
        self._trace("doorway.crossed", doorway=doorway)
        if doorway == RECOLOR_ASYNC:
            self.doorways.start_entry(RECOLOR_SYNC)
        elif doorway == RECOLOR_SYNC:
            self._begin_recoloring()
        elif doorway == FORK_ASYNC:
            # Figure 5: ADf is crossed *inside* the recoloring doorways;
            # now leave them (nodes that skipped recoloring were never
            # behind them and these exits are no-ops).
            self.doorways.exit(RECOLOR_SYNC)
            self.doorways.exit(RECOLOR_ASYNC)
            self.doorways.start_entry(FORK_SYNC)
        elif doorway == FORK_SYNC:
            if self.node.state is NodeState.HUNGRY:
                self.fork_proto.start_collection()

    # ------------------------------------------------------------------
    # Recoloring module (Algorithm 2 wrapper)
    # ------------------------------------------------------------------
    def _begin_recoloring(self) -> None:
        self.recolor_runs += 1
        # R := N (Line 37) — the cached frozenset; the session copies it.
        peers = self.node.neighbors()
        self.session = self.coloring.create_session(
            self.node_id, peers, self.node.send, self._recolor_finished
        )
        if self._probes is not None:
            self._probes.note_recolor_begin()
            self._recolor_started = self.node.now
            self.session.probes = self._probes
        self._trace("recolor.begin", peers=len(peers))
        self.session.begin()

    def _recolor_finished(self, value: int) -> None:
        self.my_color = -value - 1  # Line 38: strictly negative
        self.needs_recolor = False
        if self._probes is not None and self.session is not None:
            started = self._recolor_started
            self._recolor_started = None
            self._probes.note_recolor_done(
                self.session.rounds_executed,
                self.node.now - (started if started is not None else self.node.now),
            )
        self.session = None
        self.node.broadcast(UpdateColor(self.my_color))
        self._trace("recolor.done", color=self.my_color)
        self.doorways.start_entry(FORK_ASYNC)

    def _participating(self) -> bool:
        return self.session is not None and self.session.active

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------
    def on_message(self, src: int, message: Message) -> None:
        # Unknown kinds are ignored (forward compatibility).
        self.dispatch_message(src, message)

    @handles(DoorwayCross)
    def _on_doorway_cross(self, src: int, message: DoorwayCross) -> None:
        self.doorways.note_cross(src, message.doorway)

    @handles(DoorwayExit)
    def _on_doorway_exit(self, src: int, message: DoorwayExit) -> None:
        self.doorways.note_exit(src, message.doorway)

    @handles(ForkRequest)
    def _on_fork_request(self, src: int, message: ForkRequest) -> None:
        self.fork_proto.handle_request(src)

    @handles(ForkGrant)
    def _on_fork_grant(self, src: int, message: ForkGrant) -> None:
        self.fork_proto.handle_fork(src, message.flag)
        self._after_state_change()

    @handles(UpdateColor)
    def _on_update_color(self, src: int, message: UpdateColor) -> None:
        self.colors[src] = message.color
        self.fork_proto.recheck()

    @handles(Hello)
    def _on_hello(self, src: int, message: Hello) -> None:
        self.colors[src] = message.color
        self.doorways.on_hello(src, message.behind_doorways)
        self.pending_hellos.discard(src)
        self._maybe_start_pipeline()

    @handles(RecoloringRound)
    def _on_recoloring_round(self, src: int, message: RecoloringRound) -> None:
        # Registered on the marker base: catches GraphExchange, TempColor
        # and any future coloring-procedure round message.
        if self._participating() and src in self.session.peers:
            self.session.on_peer_message(src, message)
        else:
            # Lines 40-43: not participating -> NACK.
            iteration = getattr(message, "iteration", None)
            if iteration is None:
                iteration = getattr(message, "phase", None)
            if iteration is None:
                iteration = getattr(message, "round_index", 0)
            self.node.send(src, RecolorNack(iteration))

    @handles(RecolorNack)
    def _on_recolor_nack(self, src: int, message: RecolorNack) -> None:
        if self._participating():
            self.session.remove_peer(src)

    def _after_state_change(self) -> None:
        # A fork receipt may have completed collection for a node whose
        # remaining neighbors all departed; nothing extra needed today,
        # but the hook keeps handle-order explicit for subclasses.
        return

    # ------------------------------------------------------------------
    # Link dynamics (Algorithm 3)
    # ------------------------------------------------------------------
    def on_link_up(self, peer: int, moving: bool) -> None:
        self.colors[peer] = None
        if not moving:
            # Lines 44-46 (we play the static role).
            self.forks.link_created(peer, we_are_static=True)
            self.doorways.on_new_neighbor_while_static(peer)
            self.node.send(
                peer, Hello(self.my_color, self.doorways.behind_set())
            )
            return
        # Lines 47-55 (we are the mover).
        self.forks.link_created(peer, we_are_static=False)
        self.needs_recolor = True
        if self.doorways.is_behind(FORK_SYNC):
            if self.node.state is NodeState.EATING:
                self.node.demote_to_hungry()  # Line 50
            self.fork_proto.grant_suspended()  # Line 51
        if self.session is not None:
            self.session.abort()
            self.session = None
        self.doorways.exit_all()  # Line 52
        self.fork_proto.clear_requests()
        self.pending_hellos.add(peer)  # Line 53: wait for the Hello
        self._trace("alg1.moved", new_peer=peer)

    def on_link_down(self, peer: int) -> None:
        was_holding = self.forks.holds(peer)
        peer_color = self.colors.pop(peer, None)
        self.forks.link_destroyed(peer)
        self.fork_proto.forget_peer(peer)
        self.pending_hellos.discard(peer)
        if self.session is not None and self.session.active:
            self.session.remove_peer(peer)  # Line 61
        behind_sdf = self.doorways.is_behind(FORK_SYNC)
        self.doorways.on_link_down(peer)
        if behind_sdf:
            if (
                not was_holding
                and peer_color is not None
                and self.my_color is not None
                and peer_color < self.my_color
            ):
                self._take_return_path()  # Lines 59-60
            else:
                self.fork_proto.recheck()
        self._maybe_start_pipeline()

    def _take_return_path(self) -> None:
        """Exit SDf, release requested forks, re-enter (Figure 5's loop)."""
        self.return_paths_taken += 1
        self._trace("alg1.return_path")
        self.fork_proto.grant_suspended()
        self.doorways.exit(FORK_SYNC)
        self.fork_proto.clear_requests()
        self.doorways.start_entry(FORK_SYNC)
