"""Standalone doorway protocols for the Figure 1-4 experiments.

The doorway constructions of Chapter 4 are interesting in isolation:
Lemma 1 bounds a double doorway's traversal at O(delta * T) and Lemma 2
a double doorway with a return path at O(delta * T * R), where T is the
time complexity of the module run behind the doorway and R the number
of times the entry code of the inner synchronous doorway may re-run.

:class:`DoorwayAlgorithm` wraps one doorway configuration around a
synthetic module of fixed duration T: a "hungry" node traverses the
doorway(s), runs the module R times (taking the return path between
runs where configured), briefly "eats" (so the harness records the
response time = full traversal latency), and exits.  Doorways by
themselves do NOT provide mutual exclusion — neighbors may be behind
one concurrently — so scenarios using these protocols run with the
safety monitor in non-strict mode.
"""

from __future__ import annotations

from repro.core.base import LocalMutexAlgorithm, NodeServices
from repro.core.dispatch import MessageDispatchMixin, handles
from repro.core.doorway import DoorwaySet
from repro.core.messages import DoorwayCross, DoorwayExit, Hello
from repro.core.states import NodeState
from repro.errors import ConfigurationError
from repro.net.messages import Message
from repro.sim.timers import Timer

#: Doorway kinds understood by :class:`DoorwayAlgorithm`.
KINDS = ("sync", "async", "double", "double-return")

_OUTER = "A"
_INNER = "S"


class DoorwayAlgorithm(MessageDispatchMixin, LocalMutexAlgorithm):
    """One node's side of a synthetic doorway-guarded module."""

    name = "doorway"

    def __init__(
        self,
        node: NodeServices,
        kind: str,
        module_time: float = 1.0,
        returns: int = 1,
    ) -> None:
        """
        Args:
            node: host node services.
            kind: "sync", "async", "double" or "double-return".
            module_time: T — how long one module run takes.
            returns: R — module runs per traversal (only meaningful for
                "double-return"; must be 1 otherwise).
        """
        super().__init__(node)
        if kind not in KINDS:
            raise ConfigurationError(f"unknown doorway kind {kind!r}")
        if returns < 1:
            raise ConfigurationError(f"returns must be >= 1, got {returns}")
        if returns > 1 and kind != "double-return":
            raise ConfigurationError(
                f"kind {kind!r} does not support multiple module runs"
            )
        self.kind = kind
        self.module_time = module_time
        self.returns = returns
        self._runs_done = 0
        self._module_timer = Timer(node.sim, self._module_finished)
        if kind == "sync":
            doorways, sync = (_INNER,), frozenset({_INNER})
        elif kind == "async":
            doorways, sync = (_OUTER,), frozenset()
        else:
            doorways, sync = (_OUTER, _INNER), frozenset({_INNER})
        self._inner = _INNER if kind != "async" else _OUTER
        self.doorways = DoorwaySet(
            node, self._on_crossed, doorways=doorways, sync_doorways=sync
        )

    # ------------------------------------------------------------------
    @property
    def _entry_doorway(self) -> str:
        return _OUTER if self.kind in ("async", "double", "double-return") else _INNER

    def on_hungry(self) -> None:
        self._runs_done = 0
        self.doorways.start_entry(self._entry_doorway)

    def _on_crossed(self, doorway: str) -> None:
        if doorway == _OUTER and self.kind in ("double", "double-return"):
            self.doorways.start_entry(_INNER)
            return
        # Innermost doorway crossed: run the module.
        self._module_timer.start(self.module_time)

    def _module_finished(self) -> None:
        self._runs_done += 1
        if self._runs_done < self.returns:
            # Take the return path: exit the inner synchronous doorway
            # and immediately re-enter it (Figure 4).
            self.doorways.exit(_INNER)
            self.doorways.start_entry(_INNER)
            return
        if self.node.state is NodeState.HUNGRY:
            self.node.start_eating()

    def on_exit_cs(self) -> None:
        self.doorways.exit(self._inner)
        if self.kind in ("double", "double-return"):
            self.doorways.exit(_OUTER)

    # ------------------------------------------------------------------
    def on_message(self, src: int, message: Message) -> None:
        self.dispatch_message(src, message)

    @handles(DoorwayCross)
    def _on_doorway_cross(self, src: int, message: DoorwayCross) -> None:
        self.doorways.note_cross(src, message.doorway)

    @handles(DoorwayExit)
    def _on_doorway_exit(self, src: int, message: DoorwayExit) -> None:
        self.doorways.note_exit(src, message.doorway)

    @handles(Hello)
    def _on_hello(self, src: int, message: Hello) -> None:
        self.doorways.on_hello(src, message.behind_doorways)

    def on_link_up(self, peer: int, moving: bool) -> None:
        if not moving:
            self.doorways.on_new_neighbor_while_static(peer)
            self.node.send(peer, Hello(None, self.doorways.behind_set()))
        else:
            self._module_timer.cancel()
            self.doorways.exit_all()

    def on_link_down(self, peer: int) -> None:
        self.doorways.on_link_down(peer)


def doorway_entry(kind: str, module_time: float = 1.0, returns: int = 1):
    """Registry-style entry producing :class:`DoorwayAlgorithm` factories.

    Usage::

        config = ScenarioConfig(
            positions=...,
            algorithm=doorway_entry("double", module_time=2.0),
            strict_safety=False,
        )
    """

    def entry(ctx) -> "NodeFactory":  # noqa: F821
        return lambda node: DoorwayAlgorithm(
            node, kind, module_time=module_time, returns=returns
        )

    return entry
