"""The interface between algorithms and the node runtime.

An algorithm instance lives inside one node.  The runtime delivers
upcalls (messages, link indications, application hunger) and exposes
services (send, broadcast, neighbor set, critical-section entry) through
the :class:`NodeServices` protocol — implemented by
:class:`repro.runtime.node.NodeHarness`.

Keeping this boundary explicit lets the test suite drive algorithms
with lightweight fakes and lets baselines share the same plumbing.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, FrozenSet, Iterable, Protocol, Tuple

from repro.core.states import NodeState
from repro.net.messages import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.trace import TraceLog


class NodeServices(Protocol):
    """What an algorithm may ask of its host node."""

    node_id: int

    @property
    def state(self) -> NodeState: ...

    @property
    def now(self) -> float: ...

    @property
    def sim(self) -> "Simulator": ...

    @property
    def trace(self) -> "TraceLog": ...

    def neighbors(self) -> FrozenSet[int]:
        """Current neighbor set ``N`` (maintained by the link layer)."""
        ...

    def sorted_neighbors(self) -> Tuple[int, ...]:
        """``N`` in ascending id order (cached; never re-sorted per call)."""
        ...

    def send(self, dst: int, message: Message) -> None:
        """Unicast to a current neighbor."""
        ...

    def broadcast(self, message: Message) -> None:
        """Send to every current neighbor."""
        ...

    def start_eating(self) -> None:
        """Transition hungry -> eating (the algorithm grants the CS)."""
        ...

    def demote_to_hungry(self) -> None:
        """Transition eating -> hungry (mobility preemption, Line 50)."""
        ...


class LocalMutexAlgorithm(abc.ABC):
    """Base class for every local mutual exclusion protocol in the repo.

    Subclasses implement the five upcalls.  The runtime guarantees:

    * ``on_hungry`` fires exactly when the application sets the state to
      hungry (the state is already HUNGRY when it runs);
    * ``on_exit_cs`` fires when the application finishes eating, *before*
      the state flips to THINKING — it is the paper's "exit code";
    * ``on_message`` / ``on_link_up`` / ``on_link_down`` mirror the link
      layer's indications, and never fire after the node crashes.
    """

    #: Human-readable protocol name (overridden by subclasses).
    name = "abstract"

    # One instance per node: slotted so city-scale runs don't carry a
    # per-algorithm ``__dict__``.  Subclasses that declare their own
    # ``__slots__`` stay dict-free; ones that don't (ablations, test
    # fakes) just regain a dict, with no behavior change.
    __slots__ = ("node",)

    def __init__(self, node: NodeServices) -> None:
        self.node = node

    # ------------------------------------------------------------------
    # Upcalls from the runtime
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def on_hungry(self) -> None:
        """The application requested the critical section."""

    @abc.abstractmethod
    def on_exit_cs(self) -> None:
        """The application finished the critical section (exit code)."""

    @abc.abstractmethod
    def on_message(self, src: int, message: Message) -> None:
        """A protocol message arrived from neighbor ``src``."""

    def on_link_up(self, peer: int, moving: bool) -> None:
        """A link to ``peer`` formed; ``moving`` is *our* role for it."""

    def on_link_down(self, peer: int) -> None:
        """The link to ``peer`` failed."""

    def bootstrap_peer(self, peer: int) -> None:
        """Install initial state for a neighbor present at time zero.

        Called once per initial link before the simulation starts; the
        default is a no-op for protocols without per-link state.
        """

    def bootstrap_peers(self, peers: Iterable[int]) -> None:
        """Install initial state for every time-zero neighbor at once.

        ``peers`` arrives in ascending order (the harness passes the
        sorted neighbor list), so per-peer dict state lands in the same
        insertion order as interleaved per-link bootstrapping.  The
        default just loops :meth:`bootstrap_peer`; hot protocols may
        override with a fused loop.
        """
        for peer in peers:
            self.bootstrap_peer(peer)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        return self.node.node_id

    def _trace(self, category: str, **detail) -> None:
        self.node.trace.record(self.node.now, category, self.node_id, **detail)
