"""Node states of the local mutual exclusion problem (Section 3.2).

Every node cycles thinking -> hungry -> eating -> thinking.  The
external application moves thinking -> hungry and (implicitly, by
finishing its critical section) eating -> thinking; the algorithms move
hungry -> eating, and — uniquely to the mobile setting — may demote an
eating node back to hungry when it moves into a new neighborhood.
"""

from __future__ import annotations

import enum

from repro.errors import ProtocolError


class NodeState(enum.Enum):
    """The three state sets of Section 3.2."""

    THINKING = "thinking"
    HUNGRY = "hungry"
    EATING = "eating"


#: Legal transitions and who initiates them (documented, also enforced).
_ALLOWED_TRANSITIONS = {
    (NodeState.THINKING, NodeState.HUNGRY),   # application request
    (NodeState.HUNGRY, NodeState.EATING),     # algorithm grants CS
    (NodeState.EATING, NodeState.THINKING),   # application finishes CS
    (NodeState.EATING, NodeState.HUNGRY),     # mobility demotion (Line 50)
}


def check_transition(current: NodeState, target: NodeState) -> None:
    """Raise :class:`ProtocolError` on an illegal state transition."""
    if (current, target) not in _ALLOWED_TRANSITIONS:
        raise ProtocolError(
            f"illegal state transition {current.value} -> {target.value}"
        )
