"""The metric registry: counters, gauges and histograms for one run.

This is the telemetry counterpart of :mod:`repro.sim.trace`'s
``live_trace``/``NULL_TRACE`` idiom: a component that *may* be
instrumented normalizes its handle with :func:`live_registry` (or is
handed a :class:`~repro.obs.probes.ProtocolProbes` built on a live
registry) at construction time, holds ``None`` when telemetry is off,
and guards every instrument update with an ``is not None`` pointer
test.  The hot paths PR 1 and PR 2 made fast therefore pay nothing —
not a method call, not a dict lookup — unless a run opted in.

Instruments are deliberately tiny and deterministic:

* :class:`Counter` — a monotonically increasing total, with an optional
  per-key breakdown (e.g. doorway crossings by doorway name);
* :class:`Gauge` — a settable level with a tracked high-water mark
  (e.g. how many doorways a node is currently behind);
* :class:`Histogram` — streaming count/total/min/max summary of an
  observed distribution (e.g. fork grant latency), optionally keyed.

No wall-clock, no randomness: every update is a pure function of the
simulation, so a fixed-seed run produces a bit-identical
:meth:`MetricRegistry.snapshot` — the property the
:class:`~repro.obs.report.RunReport` round-trip tests assert.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Default histogram bucket upper bounds, in virtual time units.  A
#: 1-2.5-5 decade ladder wide enough for both sub-delay latencies
#: (fork grants arrive within one ``nu``) and whole-run durations;
#: ``+Inf`` is implicit.  Chosen once and shared by every shard so
#: cumulative bucket counts merge by plain addition.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)


def format_bound(bound: float) -> str:
    """Canonical text form of a bucket bound (snapshot key, ``le`` label)."""
    return f"{bound:g}"


class _Instrument:
    """Common naming/registration plumbing."""

    kind = "abstract"

    __slots__ = ("name", "description")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description

    def snapshot(self) -> Dict[str, object]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing count, optionally broken down by key."""

    kind = "counter"

    __slots__ = ("value", "by_key")

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self.value = 0
        self.by_key: Dict[str, int] = {}

    def inc(self, amount: int = 1, key: Optional[str] = None) -> None:
        self.value += amount
        if key is not None:
            by_key = self.by_key
            by_key[key] = by_key.get(key, 0) + amount

    def get(self, key: Optional[str] = None) -> int:
        if key is None:
            return self.value
        return self.by_key.get(key, 0)

    def snapshot(self) -> Dict[str, object]:
        data: Dict[str, object] = {"kind": self.kind, "value": self.value}
        if self.by_key:
            data["by_key"] = dict(sorted(self.by_key.items()))
        return data


class Gauge(_Instrument):
    """A level that moves both ways, with per-key values and high-water."""

    kind = "gauge"

    __slots__ = ("value", "high_water", "by_key", "high_water_by_key")

    def __init__(self, name: str, description: str = "") -> None:
        super().__init__(name, description)
        self.value = 0
        self.high_water = 0
        self.by_key: Dict[str, int] = {}
        self.high_water_by_key: Dict[str, int] = {}

    def set(self, value: int, key: Optional[str] = None) -> None:
        if key is None:
            self.value = value
            if value > self.high_water:
                self.high_water = value
            return
        self.by_key[key] = value
        if value > self.high_water_by_key.get(key, 0):
            self.high_water_by_key[key] = value

    def inc(self, amount: int = 1, key: Optional[str] = None) -> None:
        current = self.value if key is None else self.by_key.get(key, 0)
        self.set(current + amount, key=key)

    def dec(self, amount: int = 1, key: Optional[str] = None) -> None:
        current = self.value if key is None else self.by_key.get(key, 0)
        self.set(current - amount, key=key)

    def get(self, key: Optional[str] = None) -> int:
        if key is None:
            return self.value
        return self.by_key.get(key, 0)

    def snapshot(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "kind": self.kind,
            "value": self.value,
            "high_water": self.high_water,
        }
        if self.by_key:
            data["by_key"] = dict(sorted(self.by_key.items()))
            data["high_water_by_key"] = dict(
                sorted(self.high_water_by_key.items())
            )
        return data


class _HistogramCell:
    __slots__ = ("count", "total", "minimum", "maximum", "bucket_counts")

    def __init__(self, n_buckets: int) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        # One slot per finite bound plus the implicit +Inf overflow;
        # counts are per-bucket here and cumulated at snapshot time.
        self.bucket_counts = [0] * (n_buckets + 1)

    def observe(self, value: float, bucket_index: int) -> None:
        self.count += 1
        self.total += value
        self.bucket_counts[bucket_index] += 1
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def snapshot(self, bounds: Sequence[float]) -> Dict[str, object]:
        data: Dict[str, object] = {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }
        if self.count:
            data["mean"] = self.total / self.count
            cumulative = 0
            buckets: Dict[str, int] = {}
            for bound, bucket in zip(bounds, self.bucket_counts):
                cumulative += bucket
                buckets[format_bound(bound)] = cumulative
            buckets["+Inf"] = self.count
            data["buckets"] = buckets
        return data


class Histogram(_Instrument):
    """Streaming summary of observations with cumulative buckets.

    Tracks count/total/min/max/mean plus per-bucket counts over a fixed
    bound ladder (:data:`DEFAULT_BUCKETS` unless overridden at
    creation).  Snapshots expose the buckets *cumulatively* — the form
    OpenMetrics histograms use and the form that merges across shards
    by plain addition.
    """

    kind = "histogram"

    __slots__ = ("_all", "_by_key", "bounds")

    def __init__(
        self,
        name: str,
        description: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, description)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram {name!r} bucket bounds must be non-empty and "
                f"strictly increasing: {bounds}"
            )
        self.bounds = bounds
        self._all = _HistogramCell(len(bounds))
        self._by_key: Dict[str, _HistogramCell] = {}

    def observe(self, value: float, key: Optional[str] = None) -> None:
        index = bisect_left(self.bounds, value)
        self._all.observe(value, index)
        if key is not None:
            cell = self._by_key.get(key)
            if cell is None:
                cell = self._by_key[key] = _HistogramCell(len(self.bounds))
            cell.observe(value, index)

    @property
    def count(self) -> int:
        return self._all.count

    @property
    def total(self) -> float:
        return self._all.total

    def mean(self, key: Optional[str] = None) -> Optional[float]:
        cell = self._all if key is None else self._by_key.get(key)
        if cell is None or not cell.count:
            return None
        return cell.total / cell.count

    def snapshot(self) -> Dict[str, object]:
        data: Dict[str, object] = {"kind": self.kind}
        data.update(self._all.snapshot(self.bounds))
        if self._by_key:
            data["by_key"] = {
                key: cell.snapshot(self.bounds)
                for key, cell in sorted(self._by_key.items())
            }
        return data


class MetricRegistry:
    """Namespace of instruments for one simulation run.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    twice for the same name returns the same instrument, and asking for
    an existing name with a different kind is a configuration error
    (it would silently split one metric into two).
    """

    #: Mirrors ``TraceLog.enabled``: :func:`live_registry` returns
    #: ``None`` for disabled registries so hot paths skip all work.
    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, description: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = cls(name, description)
        elif not isinstance(instrument, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, not {cls.kind}"
            )
        return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(
        self,
        name: str,
        description: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = Histogram(
                name, description, buckets=buckets
            )
        elif not isinstance(instrument, Histogram):
            raise ConfigurationError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, not {Histogram.kind}"
            )
        return instrument

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All instruments as one JSON-ready dict (sorted by name)."""
        return {
            name: self._instruments[name].snapshot()
            for name in sorted(self._instruments)
        }


class _NullRegistry(MetricRegistry):
    """Shared disabled registry: creates instruments but stays disabled.

    Handed to code that wants an always-valid registry object; hot
    paths should normalize with :func:`live_registry` instead and hold
    ``None``.
    """

    enabled = False


#: Shared sentinel for "no telemetry".
NULL_REGISTRY = _NullRegistry()


def live_registry(registry: Optional[MetricRegistry]) -> Optional[MetricRegistry]:
    """Normalize a registry handle for hot-path guards.

    Returns ``registry`` only if it is a real, enabled registry;
    ``None`` for ``None`` and :data:`NULL_REGISTRY`.  Mirrors
    :func:`repro.sim.trace.live_trace`.
    """
    if registry is None or not registry.enabled:
        return None
    return registry


# ----------------------------------------------------------------------
# Cross-registry snapshot merging (sharded runs)
# ----------------------------------------------------------------------


def merge_snapshots(
    snapshots: Iterable[Mapping[str, Mapping[str, object]]],
) -> Dict[str, Dict[str, object]]:
    """Merge per-shard ``MetricRegistry.snapshot()`` dicts into one.

    The shards of a run own disjoint node sets, so extensive quantities
    add: counter values, gauge levels, histogram counts/totals and
    cumulative bucket counts all sum.  Histogram ``min``/``max`` take
    the min/max across shards and ``mean`` is recomputed from the
    merged total/count.  Gauge ``high_water`` sums too — per-shard
    peaks need not coincide in time, so the sum is an upper bound on
    the true network-wide high water (and exact when levels only grow).
    """
    merged: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        for name, data in snapshot.items():
            into = merged.get(name)
            if into is None:
                merged[name] = _copy_instrument(data)
            else:
                _merge_instrument(into, data)
    for data in merged.values():
        _refresh_means(data)
    return {name: merged[name] for name in sorted(merged)}


def _copy_instrument(data: Mapping[str, object]) -> Dict[str, object]:
    return {
        key: (
            {k: _copy_instrument(v) if isinstance(v, Mapping) else v
             for k, v in value.items()}
            if isinstance(value, Mapping)
            else value
        )
        for key, value in data.items()
    }


def _merge_instrument(
    into: Dict[str, object], data: Mapping[str, object]
) -> None:
    for key, value in data.items():
        if isinstance(value, Mapping):
            sub = into.setdefault(key, {})
            if isinstance(sub, dict):
                _merge_instrument(sub, value)
            continue
        if key == "kind":
            if into.get("kind") != value:
                raise ConfigurationError(
                    f"cannot merge snapshots: instrument kinds differ "
                    f"({into.get('kind')!r} vs {value!r})"
                )
            continue
        current = into.get(key)
        if key == "min":
            if value is not None and (current is None or value < current):
                into[key] = value
        elif key == "max":
            if value is not None and (current is None or value > current):
                into[key] = value
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            into.setdefault(key, value)
        elif current is None:
            into[key] = value
        else:
            into[key] = current + value


def _refresh_means(data: Dict[str, object]) -> None:
    """Recompute derived fields the additive merge cannot sum."""
    if data.get("kind") == "histogram":
        count = data.get("count")
        if isinstance(count, (int, float)) and count:
            data["mean"] = data["total"] / count
        by_key = data.get("by_key")
        if isinstance(by_key, dict):
            for cell in by_key.values():
                if isinstance(cell, dict) and cell.get("count"):
                    cell["mean"] = cell["total"] / cell["count"]
