"""Wall-clock profiling of the event engine.

Answers "where does the wall-clock of a run actually go?" without
touching the protocol code: the engine, when a profiler is attached,
times each executed callback and reports totals *per callback
category* (the callback's qualified name — ``ChannelLayer._drain``,
``Timer._fire``, ``MobilityController._step``, ...).  A periodic
events/sec sample series shows how throughput evolves over a run
(useful for spotting heap growth or degrading hot paths in long
sweeps).

Everything here is wall-clock and therefore *not* part of the
deterministic :class:`~repro.obs.report.RunReport` contract: the
report carries the profile only when profiling was explicitly enabled,
and fixed-seed bit-identity is asserted on unprofiled runs.

The engine's uninstrumented cost is one ``is None`` test per executed
event (the handle is hoisted before the hot loop); the perf-smoke
benchmark guards that this stays in the noise.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List


class EngineProfiler:
    """Per-category wall-time accounting plus events/sec sampling.

    Args:
        sample_every: record one throughput sample per this many
            executed events (0 disables sampling).
    """

    __slots__ = (
        "sample_every",
        "categories",
        "samples",
        "_events",
        "_started_wall",
        "_last_sample_wall",
        "_last_sample_events",
    )

    def __init__(self, sample_every: int = 50_000) -> None:
        self.sample_every = sample_every
        #: category -> [executed events, total wall seconds]
        self.categories: Dict[str, List[float]] = {}
        #: throughput samples: dicts with virtual time, executed events
        #: and instantaneous events/sec since the previous sample.
        self.samples: List[Dict[str, float]] = []
        self._events = 0
        self._started_wall = perf_counter()
        self._last_sample_wall = self._started_wall
        self._last_sample_events = 0

    # ------------------------------------------------------------------
    # Engine-facing API (hot when attached)
    # ------------------------------------------------------------------
    def note(self, callback: Callable[..., Any], seconds: float, now: float) -> None:
        """Record one executed event (called by ``Simulator.run``)."""
        category = getattr(callback, "__qualname__", None)
        if category is None:  # pragma: no cover - exotic callables
            category = repr(callback)
        cell = self.categories.get(category)
        if cell is None:
            cell = self.categories[category] = [0, 0.0]
        cell[0] += 1
        cell[1] += seconds
        self._events += 1
        if self.sample_every and self._events % self.sample_every == 0:
            wall = perf_counter()
            span = wall - self._last_sample_wall
            self.samples.append({
                "virtual_time": now,
                "executed_events": self._events,
                "events_per_second": (
                    (self._events - self._last_sample_events) / span
                    if span > 0
                    else float("inf")
                ),
            })
            self._last_sample_wall = wall
            self._last_sample_events = self._events

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def events(self) -> int:
        return self._events

    def summary(self) -> Dict[str, Any]:
        """JSON-ready profile: per-category totals plus overall rate."""
        wall = perf_counter() - self._started_wall
        by_category = {
            name: {
                "events": int(count),
                "seconds": seconds,
                "mean_us": (seconds / count * 1e6) if count else 0.0,
            }
            for name, (count, seconds) in sorted(self.categories.items())
        }
        return {
            "events": self._events,
            "wall_seconds": wall,
            "events_per_second": (self._events / wall) if wall > 0 else 0.0,
            "by_category": by_category,
            "samples": list(self.samples),
        }

    def top_categories(self, limit: int = 5) -> List[str]:
        """Category names by descending total wall time."""
        ranked = sorted(
            self.categories.items(), key=lambda item: -item[1][1]
        )
        return [name for name, _ in ranked[:limit]]
