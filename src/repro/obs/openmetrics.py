"""OpenMetrics text exporter for :class:`~repro.obs.registry.MetricRegistry`.

Renders counter/gauge/histogram snapshots as an `OpenMetrics 1.0
<https://openmetrics.io>`_ text exposition — the format Prometheus
scrapes — so a run's telemetry can leave the process: as a file
snapshot (``SimulationResult.openmetrics()``, ``repro run --metrics``,
``replicate(..., metrics_dir=...)``) or over a stdlib HTTP scrape
endpoint (``repro metrics serve``).

Mapping from registry instruments to OpenMetrics families (every
rendered name carries the ``repro_`` prefix and has its dots folded to
underscores, e.g. ``fork.grant_latency`` → ``repro_fork_grant_latency``):

* **Counter** → a ``counter`` family; the unlabeled ``_total`` sample
  is the authoritative total and the optional per-key breakdown rides
  as ``{key="..."}``-labeled samples (keys need not cover the total).
* **Gauge** → a ``gauge`` family for the level plus a sibling
  ``<name>_high_water`` gauge family for the tracked peaks.
* **Histogram** → a ``histogram`` family with cumulative ``_bucket``
  samples over the registry's bound ladder (``le`` labels, ``+Inf``
  last), ``_count`` and ``_sum``, plus sibling ``<name>_min`` /
  ``<name>_max`` gauge families for the streaming extrema.

Sharded runs pass one snapshot per shard: the families are merged and
every sample gains a ``shard="k"`` label, so a scrape-side
``sum by (...)`` reconstructs the global view while the per-shard
breakdown stays queryable.

Validation is strict on the way out: metric and label names must match
the OpenMetrics grammar after sanitization (a probe name that cannot
be folded into a legal identifier raises ``ConfigurationError`` rather
than emitting a family Prometheus would reject), label values are
escaped, and the exposition ends with the mandatory ``# EOF``.
"""

from __future__ import annotations

import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Mapping, Optional

from repro.errors import ConfigurationError
from repro.obs.registry import MetricRegistry

#: Content type a compliant OpenMetrics scraper negotiates.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

#: OpenMetrics metric-name grammar (colons are legal but reserved for
#: recording rules, so the exporter never emits them).
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Prefix stamped on every exported family.
PREFIX = "repro_"


def metric_name(name: str) -> str:
    """Registry probe name → validated OpenMetrics family name.

    Dots (the registry's namespace separator) and dashes fold to
    underscores; the ``repro_`` prefix is added.  Anything that still
    fails the grammar afterwards is a configuration error — silently
    mangling further would collide families.
    """
    folded = PREFIX + name.replace(".", "_").replace("-", "_")
    if not METRIC_NAME_RE.match(folded):
        raise ConfigurationError(
            f"probe name {name!r} does not render to a valid OpenMetrics "
            f"identifier ({folded!r})"
        )
    return folded


def escape_label_value(value: str) -> str:
    """Backslash-escape a label value per the exposition grammar."""
    return (
        value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")
    )


def format_value(value: object) -> str:
    """Canonical sample value text: ints stay ints, floats round-trip."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    raise ConfigurationError(f"non-numeric sample value {value!r}")


def _labelset(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    for label in labels:
        if not LABEL_NAME_RE.match(label):
            raise ConfigurationError(f"invalid label name {label!r}")
    return (
        "{"
        + ",".join(
            f'{label}="{escape_label_value(str(value))}"'
            for label, value in labels.items()
        )
        + "}"
    )


class _FamilyWriter:
    """Accumulates one family's metadata and samples in emission order."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.samples: List[str] = []

    def add(
        self, suffix: str, labels: Mapping[str, str], value: object
    ) -> None:
        self.samples.append(
            f"{self.name}{suffix}{_labelset(labels)} {format_value(value)}"
        )

    def lines(self) -> List[str]:
        lines = [f"# TYPE {self.name} {self.kind}"]
        if self.help_text:
            help_text = self.help_text.replace("\\", r"\\").replace("\n", r"\n")
            lines.append(f"# HELP {self.name} {help_text}")
        lines.extend(self.samples)
        return lines


def help_catalogue() -> Dict[str, str]:
    """Probe name → help text for every catalogued instrument.

    The protocol/mobility descriptions come straight from
    :class:`~repro.obs.probes.ProtocolProbes` (instantiated on a
    throwaway registry so the catalogue cannot drift from the code);
    the watchdog and exploration counters, registered at run time by
    their subsystems, are listed here.
    """
    from repro.obs.probes import ProtocolProbes

    registry = MetricRegistry()
    ProtocolProbes(registry)
    catalogue = {
        name: registry.get(name).description for name in registry.names()
    }
    catalogue.update({
        "watchdog.warnings": "starvation warnings emitted",
        "explore.decisions": "controlled choice-point decisions by kind",
        "explore.monitor_checks": "invariant-monitor checks executed",
        "explore.violations": "invariant violations by monitor",
    })
    return catalogue


def _render_instrument(
    families: Dict[str, _FamilyWriter],
    name: str,
    data: Mapping[str, object],
    labels: Mapping[str, str],
    help_texts: Mapping[str, str],
) -> None:
    kind = data.get("kind")
    base = metric_name(name)
    help_text = help_texts.get(name, "")

    def family(suffix_name: str, om_kind: str, help_suffix: str = "") -> _FamilyWriter:
        writer = families.get(suffix_name)
        if writer is None:
            writer = families[suffix_name] = _FamilyWriter(
                suffix_name, om_kind,
                (help_text + help_suffix) if help_text else "",
            )
        return writer

    if kind == "counter":
        writer = family(base, "counter")
        writer.add("_total", labels, data.get("value", 0))
        for key, value in (data.get("by_key") or {}).items():
            writer.add("_total", {**labels, "key": key}, value)
    elif kind == "gauge":
        writer = family(base, "gauge")
        writer.add("", labels, data.get("value", 0))
        for key, value in (data.get("by_key") or {}).items():
            writer.add("", {**labels, "key": key}, value)
        peaks = family(base + "_high_water", "gauge", " (high water)")
        peaks.add("", labels, data.get("high_water", 0))
        for key, value in (data.get("high_water_by_key") or {}).items():
            peaks.add("", {**labels, "key": key}, value)
    elif kind == "histogram":
        writer = family(base, "histogram")
        _render_histogram_cell(writer, labels, data)
        _render_extrema(families, base, labels, data, help_text)
        for key, cell in (data.get("by_key") or {}).items():
            keyed = {**labels, "key": key}
            _render_histogram_cell(writer, keyed, cell)
            _render_extrema(families, base, keyed, cell, help_text)
    else:
        raise ConfigurationError(
            f"instrument {name!r} has unknown kind {kind!r}"
        )


def _render_histogram_cell(
    writer: _FamilyWriter,
    labels: Mapping[str, str],
    cell: Mapping[str, object],
) -> None:
    count = cell.get("count", 0)
    buckets = cell.get("buckets") or {}
    # Sort bounds numerically: snapshots that round-tripped through a
    # sort_keys JSON dump (RunReport.save) come back string-ordered,
    # where "10" sorts before "2.5".
    for bound in sorted((b for b in buckets if b != "+Inf"), key=float):
        writer.add("_bucket", {**labels, "le": bound}, buckets[bound])
    writer.add("_bucket", {**labels, "le": "+Inf"}, count)
    writer.add("_count", labels, count)
    writer.add("_sum", labels, cell.get("total", 0.0))


def _render_extrema(
    families: Dict[str, _FamilyWriter],
    base: str,
    labels: Mapping[str, str],
    cell: Mapping[str, object],
    help_text: str,
) -> None:
    for stat in ("min", "max"):
        value = cell.get(stat)
        if value is None:
            continue
        name = f"{base}_{stat}"
        writer = families.get(name)
        if writer is None:
            writer = families[name] = _FamilyWriter(
                name, "gauge",
                f"{help_text} ({stat})" if help_text else "",
            )
        writer.add("", labels, value)


def render_openmetrics(
    probes: Optional[Mapping[str, Mapping[str, object]]] = None,
    *,
    shards: Optional[Mapping[str, Mapping[str, Mapping[str, object]]]] = None,
    labels: Optional[Mapping[str, str]] = None,
    help_texts: Optional[Mapping[str, str]] = None,
) -> str:
    """Render snapshot dict(s) as one OpenMetrics text exposition.

    Args:
        probes: a ``MetricRegistry.snapshot()`` dict (single-registry
            runs).  Ignored when ``shards`` is given.
        shards: per-shard snapshots keyed by shard id; families merge
            and every sample gains a ``shard="k"`` label.
        labels: static labels stamped on every sample (e.g. run id).
        help_texts: probe name → ``# HELP`` text; defaults to the
            :func:`help_catalogue` (unknown probes render without HELP).
    """
    if help_texts is None:
        help_texts = help_catalogue()
    base_labels = dict(labels or {})
    families: Dict[str, _FamilyWriter] = {}
    if shards is not None:
        for shard_id in sorted(shards, key=str):
            shard_labels = {**base_labels, "shard": str(shard_id)}
            for name in sorted(shards[shard_id]):
                _render_instrument(
                    families, name, shards[shard_id][name],
                    shard_labels, help_texts,
                )
    elif probes:
        for name in sorted(probes):
            _render_instrument(
                families, name, probes[name], base_labels, help_texts
            )
    lines: List[str] = []
    for name in sorted(families):
        lines.extend(families[name].lines())
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def render_registry(
    registry: MetricRegistry,
    *,
    labels: Optional[Mapping[str, str]] = None,
) -> str:
    """Render a live registry, using its own instrument descriptions."""
    help_texts = {
        name: registry.get(name).description for name in registry.names()
    }
    return render_openmetrics(
        registry.snapshot(), labels=labels, help_texts=help_texts
    )


def openmetrics_from_report(report) -> str:
    """Render a :class:`~repro.obs.report.RunReport`'s probe snapshot.

    Profiled sharded reports carry the per-shard registry snapshots
    under ``resources.shard_probes``; when present the shard-labeled
    rendering is used, otherwise the merged ``probes`` section renders
    unlabeled.
    """
    shard_probes = None
    if report.resources is not None:
        shard_probes = report.resources.get("shard_probes")
    if shard_probes:
        return render_openmetrics(shards=shard_probes)
    return render_openmetrics(report.probes)


# ----------------------------------------------------------------------
# Scrape endpoint
# ----------------------------------------------------------------------


def build_metrics_server(
    source: Callable[[], str],
    host: str = "127.0.0.1",
    port: int = 9464,
) -> ThreadingHTTPServer:
    """A stdlib HTTP server exposing ``source()`` at ``/metrics``.

    ``source`` is called per scrape, so a file-backed source picks up
    snapshot rewrites from a long-running experiment without restarts.
    The caller owns the serve loop (``serve_forever`` /
    ``handle_request``) and shutdown.
    """

    class _MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                self.send_error(404, "scrape /metrics")
                return
            try:
                body = source().encode("utf-8")
            except Exception as exc:  # surface as a scrape failure
                self.send_error(500, str(exc))
                return
            self.send_response(200)
            self.send_header("Content-Type", CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args: object) -> None:
            pass  # scrapes are periodic; stderr chatter helps nobody

    return ThreadingHTTPServer((host, port), _MetricsHandler)
