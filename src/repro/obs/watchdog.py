"""Periodic starvation watchdog.

Starvation in this model is silent: a node waiting on a crashed fork
holder simply never eats, and nothing in the protocol reports it.  The
watchdog makes it loud — a periodic MONITOR-priority event samples
:meth:`~repro.metrics.collector.MetricsCollector.starving` and emits
one structured warning per (node, hungry-interval) that exceeds the
threshold, both as a :class:`StarvationWarning` record (collected on
the watchdog and surfaced in the :class:`~repro.obs.report.RunReport`)
and through the ``repro.obs.watchdog`` logger.

Determinism: the watchdog schedules ordinary engine events, so it
shifts sequence tickets uniformly but never reorders protocol events
relative to each other — a fixed-seed run with the watchdog on yields
the same protocol behavior (and the same warnings) every time.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.metrics.collector import MetricsCollector
from repro.obs.registry import MetricRegistry, live_registry
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority

logger = logging.getLogger("repro.obs.watchdog")


@dataclass(frozen=True)
class StarvationWarning:
    """One node observed hungry past the starvation threshold."""

    time: float
    node: int
    hungry_since: float
    threshold: float

    @property
    def duration(self) -> float:
        return self.time - self.hungry_since

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "starvation",
            "time": self.time,
            "node": self.node,
            "hungry_since": self.hungry_since,
            "duration": self.duration,
            "threshold": self.threshold,
        }


class StarvationWatchdog:
    """Fires a structured warning once per starving hungry interval.

    Args:
        sim: the shared engine (the watchdog schedules itself on it).
        metrics: the run's collector; crashed nodes never appear
            because :meth:`MetricsCollector.note_crash` clears them.
        threshold: hungry duration (virtual time) that counts as
            starving.
        period: sampling period; the first check runs one period in.
        registry: optional metric registry — a live one gains a
            ``watchdog.warnings`` counter.
    """

    def __init__(
        self,
        sim: Simulator,
        metrics: MetricsCollector,
        threshold: float,
        period: float = 5.0,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"starvation threshold must be > 0: {threshold}")
        if period <= 0:
            raise ValueError(f"watchdog period must be > 0: {period}")
        self._sim = sim
        self._metrics = metrics
        self.threshold = threshold
        self.period = period
        self.warnings: List[StarvationWarning] = []
        live = live_registry(registry)
        self._counter = (
            live.counter("watchdog.warnings", "starvation warnings emitted")
            if live is not None
            else None
        )
        #: (node, hungry_since) pairs already warned about.
        self._warned: Set[Tuple[int, float]] = set()
        self._event = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first check (idempotent)."""
        if self._event is None or self._event.cancelled:
            self._event = self._sim.schedule(
                self.period, self._tick, priority=EventPriority.MONITOR
            )

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    # ------------------------------------------------------------------
    def check_now(self) -> List[StarvationWarning]:
        """Run one check immediately; returns the new warnings."""
        return self._check(self._sim.now)

    def _tick(self) -> None:
        self._check(self._sim.now)
        self._event = self._sim.schedule(
            self.period, self._tick, priority=EventPriority.MONITOR
        )

    def _check(self, now: float) -> List[StarvationWarning]:
        hungry = self._metrics.hungry_nodes()
        fresh: List[StarvationWarning] = []
        for node in self._metrics.starving(now, self.threshold):
            since = hungry[node]
            key = (node, since)
            if key in self._warned:
                continue
            self._warned.add(key)
            warning = StarvationWarning(
                time=now, node=node, hungry_since=since,
                threshold=self.threshold,
            )
            fresh.append(warning)
            self.warnings.append(warning)
            if self._counter is not None:
                self._counter.inc()
            logger.warning(
                "starvation: node %d hungry for %.3f tu (since t=%.3f, "
                "threshold %.3f)",
                warning.node, warning.duration, warning.hungry_since,
                warning.threshold,
            )
        # Forget warned intervals that ended so the set stays bounded.
        self._warned = {
            (node, since)
            for node, since in self._warned
            if hungry.get(node) == since
        }
        return fresh

    def warning_dicts(self) -> List[Dict[str, Any]]:
        """All warnings as JSON-ready dicts (for the run report)."""
        return [w.to_dict() for w in self.warnings]
