"""Structured, schema-versioned run reports.

A :class:`RunReport` is the single machine-readable artifact of one
simulation run: the response-time summary (the paper's Definition 1
metric), per-node lifetime counters, per-kind channel counters, engine
statistics, the probe-metric snapshot, starvation and failure-locality
results, and watchdog warnings.  It round-trips through JSON
(``to_json``/``from_json``), and fixed-seed runs produce bit-identical
reports — everything in it derives from virtual time and deterministic
counters, never wall-clock (the optional engine profile, which *is*
wall-clock, rides in a separate ``profile`` field that fixed-seed
comparisons ignore by being absent unless profiling was enabled).

``diff`` flattens two reports and returns the leaves that changed,
which is how the CLI's ``report`` subcommand and the regression
tooling compare runs across code versions, backends and sweeps.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Tuple, Union

from repro._version import __version__
from repro.errors import ConfigurationError

#: Bump on any breaking change to the report layout.  Loaders accept
#: only this major version; the golden-file test pins it.
SCHEMA_VERSION = 1


@dataclass
class RunReport:
    """Everything one finished run exposes, JSON-ready."""

    schema_version: int = SCHEMA_VERSION
    #: Library version that produced the report (``repro.__version__``);
    #: defaults to the running library's own version so hand-built
    #: reports are stamped too.  Loading tolerates any value — the
    #: schema version, not the package version, gates compatibility.
    version: str = __version__
    #: Declarative scenario (``config_to_dict`` output) or a minimal
    #: ``{"algorithm": ...}`` stub when the scenario does not serialize.
    config: Dict[str, Any] = field(default_factory=dict)
    duration: float = 0.0
    #: Response-time summary: count/mean/median/p95/max/min/stdev, plus
    #: cs_entries and the raw sample count after demotions.
    response: Dict[str, Any] = field(default_factory=dict)
    #: Aggregated node counters (hungry/cs_entries/completions/
    #: demotions) with a per-node breakdown.
    nodes: Dict[str, Any] = field(default_factory=dict)
    #: ``ChannelStats.snapshot()``: totals and per-kind breakdowns.
    channel: Dict[str, Any] = field(default_factory=dict)
    #: Engine statistics: executed_events, pending_events, now (the
    #: wall-clock and scheduler-discipline counters are stripped so
    #: reports stay deterministic and discipline-independent; queue ops
    #: surface through the ``engine.sched_ops`` probe instead).
    engine: Dict[str, Any] = field(default_factory=dict)
    #: ``MetricRegistry.snapshot()`` — empty when telemetry was off.
    probes: Dict[str, Any] = field(default_factory=dict)
    starved: List[int] = field(default_factory=list)
    #: Failure-locality summary when the run had a crash plan.
    locality: Optional[Dict[str, Any]] = None
    #: Structured starvation-watchdog warnings (empty when off/silent).
    warnings: List[Dict[str, Any]] = field(default_factory=list)
    #: Wall-clock engine profile; only present when profiling was on.
    profile: Optional[Dict[str, Any]] = None
    #: Host-resource footprint (wall_time_s, events_per_sec,
    #: peak_rss_kb); populated, like ``profile``, only when profiling
    #: was on — fixed-seed report comparisons see None.
    resources: Optional[Dict[str, Any]] = None
    #: Exploration summary (strategy, decision counts, violation) when
    #: the run was driven by :mod:`repro.explore`; ``None`` otherwise.
    exploration: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON: sorted keys, so equal reports are equal text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunReport":
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported RunReport schema version {version!r} "
                f"(this library reads version {SCHEMA_VERSION})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown RunReport fields: {sorted(unknown)}"
            )
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"bad RunReport JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigurationError("RunReport JSON must be an object")
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunReport":
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def diff(self, other: "RunReport") -> Dict[str, Tuple[Any, Any]]:
        """Changed leaves between two reports.

        Returns ``{dotted.path: (ours, theirs)}`` for every scalar leaf
        present in either report whose value differs; a path missing on
        one side shows as ``None`` there.
        """
        mine = _flatten(self.to_dict())
        theirs = _flatten(other.to_dict())
        changed: Dict[str, Tuple[Any, Any]] = {}
        for key in sorted(set(mine) | set(theirs)):
            a, b = mine.get(key), theirs.get(key)
            if a != b:
                changed[key] = (a, b)
        return changed

    def summary_lines(self) -> List[str]:
        """Human-oriented one-liners for CLI pretty-printing."""
        lines = [
            f"schema v{self.schema_version}, "
            f"algorithm {self.config.get('algorithm', '?')}, "
            f"duration {self.duration:g} tu",
            f"cs entries: {self.response.get('cs_entries', 0)}",
        ]
        mean = self.response.get("mean")
        p95 = self.response.get("p95")
        if mean is not None:
            line = f"response: mean {mean:.3f}"
            if p95 is not None:
                line += f", p95 {p95:.3f}"
            lines.append(line)
        lines.append(
            f"messages: {self.channel.get('sent', 0)} sent, "
            f"{self.channel.get('delivered', 0)} delivered, "
            f"{self.channel.get('dropped_link_down', 0)} dropped"
        )
        lines.append(
            f"engine: {self.engine.get('executed_events', 0)} events, "
            f"{self.engine.get('pending_events', 0)} pending at end"
        )
        lines.append(
            "starved: "
            + (",".join(map(str, self.starved)) if self.starved else "none")
        )
        if self.locality is not None:
            lines.append(
                f"failure locality: radius "
                f"{self.locality.get('starvation_radius')}"
            )
        if self.warnings:
            lines.append(f"watchdog warnings: {len(self.warnings)}")
        if self.probes:
            lines.append(f"probe metrics: {len(self.probes)}")
        if self.exploration is not None:
            violation = self.exploration.get("violation")
            if violation:
                lines.append(
                    f"exploration: VIOLATION of {violation.get('monitor')} "
                    f"at step {violation.get('step')} "
                    f"(t={violation.get('time', 0.0):g})"
                )
            else:
                lines.append(
                    "exploration: clean under strategy "
                    f"{self.exploration.get('strategy', {}).get('kind', '?')}"
                )
        return lines


def _flatten(data: Any, prefix: str = "") -> Dict[str, Any]:
    """Flatten nested dicts/lists into dotted-path scalar leaves."""
    leaves: Dict[str, Any] = {}
    if isinstance(data, dict):
        if not data:
            leaves[prefix or "."] = {}
        for key, value in data.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(_flatten(value, path))
    elif isinstance(data, (list, tuple)):
        if not data:
            leaves[prefix or "."] = []
        for index, value in enumerate(data):
            path = f"{prefix}[{index}]"
            leaves.update(_flatten(value, path))
    else:
        leaves[prefix or "."] = data
    return leaves
