"""Append-only benchmark history with cross-commit regression detection.

``BENCH_core.json`` is a *snapshot* — each perf-bench run overwrites
it, so the repo only ever records the latest measurement and a
regression shows up (if at all) as a suspicious diff in review.  This
module turns the same measurements into a *trajectory*:

* :func:`append_record` appends one JSON line to ``BENCH_history.jsonl``
  — the full bench sections stamped with the library version, the git
  commit, a UTC timestamp and the process peak RSS.  Append-only means
  the file is an audit log: nothing rewrites history.
* :func:`check_latest` compares the newest record against a
  **trailing-median baseline** (the per-metric median of the preceding
  ``window`` records, robust to a single hot or cold run) and flags
  every tracked metric that drifted beyond
  ``max(calibrated jitter, floor)`` in its bad direction.

The jitter bound reuses the calibration machinery the wall-clock bench
guards already trust: every bench section that timed anything recorded
a ``calibration_jitter`` (spread of same-session bare event-loop
calibrations), and the largest jitter observed in the latest record is
the noise level below which a wall-clock delta means nothing on that
box.  Deterministic metrics (counters, ratios of counters) still get
the floor, so a real 2x regression is flagged even when the box was
noisy.

Which leaves are tracked is a *suffix contract*, not a hand-kept list:
``*_seconds`` and ``peak_rss_kb`` must not grow, ``*_per_second`` /
``*speedup*`` / ``*_ratio`` must not shrink, and everything else
(counts, parameters, jitters) is context, not a metric.  New bench
sections therefore join the regression net just by following the
existing naming convention.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro._version import __version__
from repro.errors import ConfigurationError
from repro.obs.report import _flatten

#: Default history file name, at the repo root next to BENCH_core.json.
HISTORY_NAME = "BENCH_history.jsonl"

#: Default drift floor: deltas under 5% never flag, jitter can only
#: widen the band.
DEFAULT_FLOOR = 0.05

#: Trailing-median window (records, newest first) forming the baseline.
DEFAULT_WINDOW = 5

#: Peak-RSS leaves get a wider floor: ``ru_maxrss`` is a session high
#: water shaped by test order and allocator behavior, not a clean
#: per-section measurement.
RSS_FLOOR = 0.25

_HIGHER_BETTER_SUFFIXES = ("_per_second", "_per_sec", "_ratio")
_HIGHER_BETTER_TOKENS = ("speedup",)
_LOWER_BETTER_SUFFIXES = ("_seconds",)
_RSS_LEAF = "peak_rss_kb"


def git_commit(cwd: Union[str, Path, None] = None) -> Optional[str]:
    """The current ``git rev-parse HEAD``, or ``None`` outside a repo."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if output.returncode != 0:
        return None
    commit = output.stdout.strip()
    return commit or None


def utc_timestamp() -> str:
    """Current UTC time in ISO-8601 (the record stamp)."""
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def append_record(
    history_path: Union[str, Path],
    sections: Mapping[str, Any],
    *,
    version: Optional[str] = None,
    commit: Optional[str] = None,
    timestamp: Optional[str] = None,
    peak_rss_kb: Optional[int] = None,
) -> Dict[str, Any]:
    """Append one bench record as a canonical JSON line; returns it.

    ``sections`` is the ``BENCH_core.json`` payload; provenance fields
    default to the live library version, the repo's HEAD commit and the
    current UTC time.
    """
    if peak_rss_kb is None:
        from repro.runtime.simulation import peak_rss_kb as _peak

        peak_rss_kb = _peak()
    record: Dict[str, Any] = {
        "version": version if version is not None else __version__,
        "git_commit": (
            commit if commit is not None
            else git_commit(Path(history_path).resolve().parent)
        ),
        "timestamp": timestamp if timestamp is not None else utc_timestamp(),
        "peak_rss_kb": peak_rss_kb,
        "sections": dict(sections),
    }
    path = Path(history_path)
    line = json.dumps(record, sort_keys=True)
    with path.open("a") as handle:
        handle.write(line + "\n")
    return record


def load_history(history_path: Union[str, Path]) -> List[Dict[str, Any]]:
    """All records in append order; raises on a corrupt line.

    The history is an audit log — a line that does not parse means the
    file was hand-edited or truncated mid-append, which the caller
    should hear about rather than silently compare against less data.
    """
    path = Path(history_path)
    if not path.exists():
        return []
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path}:{lineno}: corrupt history line: {exc}"
            ) from exc
        if not isinstance(record, dict) or "sections" not in record:
            raise ConfigurationError(
                f"{path}:{lineno}: history record must be an object "
                "with a 'sections' field"
            )
        records.append(record)
    return records


# ----------------------------------------------------------------------
# Regression detection
# ----------------------------------------------------------------------


def metric_direction(path: str) -> Optional[str]:
    """``"higher"`` / ``"lower"`` for tracked leaves, ``None`` otherwise.

    The leaf (last dotted component, index brackets stripped) decides:
    throughputs, speedups and ratios must not shrink; wall-clock
    seconds and peak RSS must not grow.  ``calibration_jitter`` and
    ``machine_factor`` are measurement context and never tracked.
    """
    leaf = path.rsplit(".", 1)[-1]
    leaf = leaf.split("[", 1)[0]
    if leaf in ("calibration_jitter", "machine_factor"):
        return None
    if leaf == _RSS_LEAF:
        return "lower"
    if leaf.endswith(_LOWER_BETTER_SUFFIXES):
        return "lower"
    if leaf.endswith(_HIGHER_BETTER_SUFFIXES):
        return "higher"
    if any(token in leaf for token in _HIGHER_BETTER_TOKENS):
        return "higher"
    return None


def calibrated_jitter(record: Mapping[str, Any]) -> float:
    """Largest ``calibration_jitter`` leaf in one record (0.0 if none)."""
    jitter = 0.0
    for path, value in _flatten(dict(record.get("sections", {}))).items():
        if path.rsplit(".", 1)[-1].split("[", 1)[0] != "calibration_jitter":
            continue
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            jitter = max(jitter, float(value))
    return jitter


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


@dataclass(frozen=True)
class Regression:
    """One tracked metric that drifted past its tolerance."""

    metric: str
    direction: str
    value: float
    baseline: float
    #: value/baseline — > 1 means grew, < 1 means shrank.
    ratio: float
    tolerance: float
    baseline_samples: int

    def describe(self) -> str:
        verb = "grew" if self.direction == "lower" else "fell"
        return (
            f"{self.metric}: {verb} {abs(self.ratio - 1):.1%} "
            f"({self.baseline:g} -> {self.value:g}, tolerance "
            f"{self.tolerance:.1%} over {self.baseline_samples} run(s))"
        )


@dataclass(frozen=True)
class CheckResult:
    """Outcome of comparing the latest record to its trailing baseline."""

    regressions: List[Regression]
    checked: int
    tolerance: float
    jitter: float
    baseline_records: int

    @property
    def clean(self) -> bool:
        return not self.regressions


def check_latest(
    history: Sequence[Mapping[str, Any]],
    *,
    floor: float = DEFAULT_FLOOR,
    window: int = DEFAULT_WINDOW,
) -> CheckResult:
    """Compare the newest record against the trailing-median baseline.

    A tracked metric regresses when it moved beyond
    ``max(floor, calibrated jitter)`` (``max(floor, jitter, RSS_FLOOR)``
    for peak-RSS leaves) in its bad direction relative to the
    per-metric median of up to ``window`` preceding records.  Metrics
    absent from every baseline record (new benches) are skipped —
    they start their own trend.
    """
    if len(history) < 2:
        return CheckResult(
            regressions=[], checked=0,
            tolerance=floor, jitter=0.0, baseline_records=0,
        )
    latest = history[-1]
    baseline_records = list(history[-(window + 1):-1])
    jitter = calibrated_jitter(latest)
    tolerance = max(floor, jitter)
    latest_leaves = _flatten(dict(latest.get("sections", {})))
    baseline_leaves = [
        _flatten(dict(record.get("sections", {})))
        for record in baseline_records
    ]
    regressions: List[Regression] = []
    checked = 0
    for path in sorted(latest_leaves):
        direction = metric_direction(path)
        if direction is None:
            continue
        value = latest_leaves[path]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        samples = [
            leaves[path]
            for leaves in baseline_leaves
            if isinstance(leaves.get(path), (int, float))
            and not isinstance(leaves.get(path), bool)
        ]
        if not samples:
            continue
        checked += 1
        baseline = _median([float(s) for s in samples])
        if baseline == 0:
            continue
        bound = tolerance
        if path.rsplit(".", 1)[-1].split("[", 1)[0] == _RSS_LEAF:
            bound = max(bound, RSS_FLOOR)
        ratio = value / baseline
        bad = (
            ratio > 1 + bound if direction == "lower"
            else ratio < 1 - bound
        )
        if bad:
            regressions.append(Regression(
                metric=path,
                direction=direction,
                value=float(value),
                baseline=baseline,
                ratio=ratio,
                tolerance=bound,
                baseline_samples=len(samples),
            ))
    return CheckResult(
        regressions=regressions,
        checked=checked,
        tolerance=tolerance,
        jitter=jitter,
        baseline_records=len(baseline_records),
    )
