"""Run telemetry: metric registry, protocol probes, reports, profiling.

The observability layer every later perf/robustness PR reads its
numbers from.  See ``docs/observability.md`` for the registry idiom,
the probe catalogue, the report schema and the starvation watchdog.
"""

from repro.obs.probes import ProtocolProbes, build_probes
from repro.obs.profiler import EngineProfiler
from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    live_registry,
)
from repro.obs.report import SCHEMA_VERSION, RunReport
from repro.obs.watchdog import StarvationWarning, StarvationWatchdog

__all__ = [
    "Counter",
    "EngineProfiler",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_REGISTRY",
    "ProtocolProbes",
    "RunReport",
    "SCHEMA_VERSION",
    "StarvationWarning",
    "StarvationWatchdog",
    "build_probes",
    "live_registry",
]
