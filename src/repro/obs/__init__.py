"""Run telemetry: metric registry, protocol probes, reports, profiling.

The observability layer every later perf/robustness PR reads its
numbers from.  See ``docs/observability.md`` for the registry idiom,
the probe catalogue, the report schema and the starvation watchdog.
"""

from repro.obs.bench_history import append_record, check_latest, load_history
from repro.obs.openmetrics import (
    build_metrics_server,
    openmetrics_from_report,
    render_openmetrics,
    render_registry,
)
from repro.obs.probes import ProtocolProbes, build_probes
from repro.obs.profiler import EngineProfiler
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    live_registry,
    merge_snapshots,
)
from repro.obs.report import SCHEMA_VERSION, RunReport
from repro.obs.watchdog import StarvationWarning, StarvationWatchdog

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "EngineProfiler",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_REGISTRY",
    "ProtocolProbes",
    "RunReport",
    "SCHEMA_VERSION",
    "StarvationWarning",
    "StarvationWatchdog",
    "append_record",
    "build_metrics_server",
    "build_probes",
    "check_latest",
    "live_registry",
    "load_history",
    "merge_snapshots",
    "openmetrics_from_report",
    "render_openmetrics",
    "render_registry",
]
