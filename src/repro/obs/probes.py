"""Protocol-internal probes.

One :class:`ProtocolProbes` instance serves a whole simulation: the
node harnesses expose it (or ``None`` when telemetry is off) and the
protocol components — doorways, the fork engine, the recoloring
session, Algorithm 2's priority machinery — record into it behind the
usual one-pointer-test guard.

The probe catalogue (all instrument names live here, nowhere else):

==============================  ==========  =================================
``doorway.cross``               counter     crossings, keyed by doorway name
``doorway.exit``                counter     exits, keyed by doorway name
``doorway.occupancy``           gauge       nodes currently behind each
                                            doorway (network-wide), keyed,
                                            with high-water marks
``doorway.time_behind``         histogram   virtual time spent behind a
                                            doorway per crossing, keyed
``fork.requests``               counter     ForkRequest messages sent
``fork.grants``                 counter     ForkGrant messages sent
``fork.grant_latency``          histogram   request -> matching grant
                                            arrival, in virtual time
``recolor.sessions``            counter     recoloring sessions started
``recolor.rounds``              counter     peer-exchange rounds executed
``recolor.session_rounds``      histogram   rounds per completed session
``recolor.session_duration``    histogram   virtual time per completed
                                            session
``alg2.notifications``          counter     Notification broadcasts
``alg2.switches``               counter     Switch messages sent, keyed by
                                            reason (exit_cs / notified /
                                            link_up)
``watchdog.warnings``           counter     starvation warnings emitted
``mobility.updates``            counter     position updates executed,
                                            keyed by reason (crossing /
                                            horizon / arrival / teleport /
                                            freeze; fixed-step: step /
                                            teleport)
``mobility.crossings``          counter     link-crossing certificates
                                            scheduled (kinetic path)
``mobility.batch_size``         histogram   movers per batched position
                                            update (kinetic path)
``explore.decisions``           counter     controlled choice-point
                                            decisions, keyed by kind
                                            (tie / delay / crash);
                                            incremented by
                                            :mod:`repro.explore.runner`
``explore.monitor_checks``      counter     invariant-monitor checks
                                            executed during a controlled
                                            run
``explore.violations``          counter     invariant violations, keyed
                                            by monitor name
``engine.sched_ops``            counter     scheduler queue operations,
                                            keyed by op kind (enqueues /
                                            dequeues / cancelled /
                                            compactions / rung_spills /
                                            wheel_arms / wheel_cascades /
                                            cancelled_in_place); recorded
                                            at run end by the runtime
                                            from ``Simulator.stats()``,
                                            discipline-dependent by
                                            design (see
                                            docs/performance.md)
==============================  ==========  =================================
"""

from __future__ import annotations

from typing import Optional

from repro.obs.registry import MetricRegistry, live_registry


class ProtocolProbes:
    """Pre-resolved instrument handles for the protocol hot paths.

    Components hold a ``ProtocolProbes`` (or ``None``); every ``note_*``
    method below is one or two attribute operations on pre-created
    instruments, so the instrumented path stays cheap and the
    uninstrumented path costs a single ``is not None`` test at the call
    site.
    """

    __slots__ = (
        "registry",
        "doorway_cross",
        "doorway_exit",
        "doorway_occupancy",
        "doorway_time_behind",
        "fork_requests",
        "fork_grants",
        "fork_grant_latency",
        "recolor_sessions",
        "recolor_rounds",
        "recolor_session_rounds",
        "recolor_session_duration",
        "alg2_notifications",
        "alg2_switches",
        "mobility_updates",
        "mobility_crossings",
        "mobility_batch_size",
    )

    def __init__(self, registry: MetricRegistry) -> None:
        self.registry = registry
        self.doorway_cross = registry.counter(
            "doorway.cross", "doorway crossings by doorway name"
        )
        self.doorway_exit = registry.counter(
            "doorway.exit", "doorway exits by doorway name"
        )
        self.doorway_occupancy = registry.gauge(
            "doorway.occupancy", "nodes currently behind each doorway"
        )
        self.doorway_time_behind = registry.histogram(
            "doorway.time_behind", "virtual time behind a doorway per crossing"
        )
        self.fork_requests = registry.counter(
            "fork.requests", "ForkRequest messages sent"
        )
        self.fork_grants = registry.counter(
            "fork.grants", "ForkGrant messages sent"
        )
        self.fork_grant_latency = registry.histogram(
            "fork.grant_latency", "fork request -> grant virtual latency"
        )
        self.recolor_sessions = registry.counter(
            "recolor.sessions", "recoloring sessions started"
        )
        self.recolor_rounds = registry.counter(
            "recolor.rounds", "recoloring peer-exchange rounds executed"
        )
        self.recolor_session_rounds = registry.histogram(
            "recolor.session_rounds", "rounds per completed session"
        )
        self.recolor_session_duration = registry.histogram(
            "recolor.session_duration", "virtual time per completed session"
        )
        self.alg2_notifications = registry.counter(
            "alg2.notifications", "Algorithm 2 notification broadcasts"
        )
        self.alg2_switches = registry.counter(
            "alg2.switches", "Algorithm 2 switch messages by reason"
        )
        self.mobility_updates = registry.counter(
            "mobility.updates", "position updates executed by reason"
        )
        self.mobility_crossings = registry.counter(
            "mobility.crossings", "link-crossing certificates scheduled"
        )
        self.mobility_batch_size = registry.histogram(
            "mobility.batch_size", "movers per batched position update"
        )

    # ------------------------------------------------------------------
    # Doorways
    # ------------------------------------------------------------------
    def note_doorway_cross(self, doorway: str) -> None:
        self.doorway_cross.inc(key=doorway)
        self.doorway_occupancy.inc(key=doorway)

    def note_doorway_exit(self, doorway: str, time_behind: float) -> None:
        self.doorway_exit.inc(key=doorway)
        self.doorway_occupancy.dec(key=doorway)
        self.doorway_time_behind.observe(time_behind, key=doorway)

    # ------------------------------------------------------------------
    # Fork collection
    # ------------------------------------------------------------------
    def note_fork_request(self) -> None:
        self.fork_requests.inc()

    def note_fork_grant(self) -> None:
        self.fork_grants.inc()

    def note_fork_grant_latency(self, latency: float) -> None:
        self.fork_grant_latency.observe(latency)

    # ------------------------------------------------------------------
    # Recoloring
    # ------------------------------------------------------------------
    def note_recolor_begin(self) -> None:
        self.recolor_sessions.inc()

    def note_recolor_round(self) -> None:
        self.recolor_rounds.inc()

    def note_recolor_done(self, rounds: int, duration: float) -> None:
        self.recolor_session_rounds.observe(float(rounds))
        self.recolor_session_duration.observe(duration)

    # ------------------------------------------------------------------
    # Algorithm 2 priorities
    # ------------------------------------------------------------------
    def note_notification(self) -> None:
        # Per-message counts live in ChannelStats' per-kind breakdown;
        # this counts priority-protocol *events* (one per broadcast).
        self.alg2_notifications.inc()

    def note_switch(self, reason: str) -> None:
        self.alg2_switches.inc(key=reason)

    # ------------------------------------------------------------------
    # Mobility plane
    # ------------------------------------------------------------------
    def note_mobility_update(self, reason: str, batch_size: int) -> None:
        self.mobility_updates.inc(batch_size, key=reason)
        self.mobility_batch_size.observe(float(batch_size))

    def note_mobility_crossing(self) -> None:
        self.mobility_crossings.inc()


def build_probes(registry: Optional[MetricRegistry]) -> Optional[ProtocolProbes]:
    """``ProtocolProbes`` on a live registry, else ``None``.

    The single place the ``None``-when-off decision is made, so callers
    follow the :func:`~repro.obs.registry.live_registry` idiom without
    repeating it.
    """
    live = live_registry(registry)
    if live is None:
        return None
    return ProtocolProbes(live)
