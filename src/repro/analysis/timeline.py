"""ASCII critical-section timelines and trace export.

Rendering who eats when makes protocol behavior reviewable at a glance
(the meeting-room example and several regression tests use it), and the
JSON-lines export lets external tooling consume traces.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, TextIO, Tuple

from repro.errors import TraceTruncatedError
from repro.sim.trace import TraceLog


def eating_intervals(
    trace: TraceLog, allow_truncated: bool = False
) -> Dict[int, List[Tuple[float, float]]]:
    """Per-node [start, end) eating intervals reconstructed from a trace.

    An interval still open at the end of the trace is closed at the last
    record's time; demotions close intervals like exits do.

    A capacity-bounded trace that evicted records cannot yield correct
    intervals (a ``cs.enter`` may be gone while its ``cs.exit``
    survives), so truncated traces raise
    :class:`~repro.errors.TraceTruncatedError` unless the caller
    explicitly accepts a partial reconstruction with
    ``allow_truncated=True``.
    """
    if trace.truncated and not allow_truncated:
        raise TraceTruncatedError(
            f"trace dropped {trace.dropped} records to its capacity bound; "
            "eating intervals would be wrong (pass allow_truncated=True "
            "to reconstruct from the surviving suffix anyway)"
        )
    intervals: Dict[int, List[Tuple[float, float]]] = {}
    open_since: Dict[int, float] = {}
    last_time = 0.0
    for rec in trace:
        last_time = max(last_time, rec.time)
        if rec.node is None:
            continue
        if rec.category == "cs.enter":
            open_since[rec.node] = rec.time
        elif rec.category in ("cs.exit", "cs.demoted"):
            start = open_since.pop(rec.node, None)
            if start is not None:
                intervals.setdefault(rec.node, []).append((start, rec.time))
    for node, start in open_since.items():
        intervals.setdefault(node, []).append((start, last_time))
    return {node: sorted(iv) for node, iv in sorted(intervals.items())}


def render_timeline(
    trace: TraceLog,
    start: float = 0.0,
    end: Optional[float] = None,
    width: int = 80,
    nodes: Optional[List[int]] = None,
) -> str:
    """Render per-node eating activity as fixed-width ASCII bars.

    Each column is a time bucket; ``#`` marks buckets during which the
    node ate at any point.  Example::

        p0 |##....##....##..|
        p1 |..##....##....##|
    """
    intervals = eating_intervals(trace)
    if end is None:
        end = max(
            (iv[-1][1] for iv in intervals.values() if iv), default=start
        )
    if end <= start:
        end = start + 1.0
    if nodes is None:
        nodes = sorted(intervals)
    bucket = (end - start) / width
    lines = []
    for node in nodes:
        cells = []
        for i in range(width):
            lo = start + i * bucket
            hi = lo + bucket
            ate = any(
                s < hi and e > lo for s, e in intervals.get(node, ())
            )
            cells.append("#" if ate else ".")
        lines.append(f"p{node:<3d}|{''.join(cells)}|")
    header = f"t = [{start:.1f}, {end:.1f}], {bucket:.2f} per column"
    return "\n".join([header] + lines)


def concurrency_profile(trace: TraceLog, step: float = 1.0) -> List[int]:
    """Number of simultaneous eaters sampled every ``step`` time units.

    Useful for asserting that *local* mutual exclusion still allows
    genuine parallelism across the network (unlike global mutex).
    """
    intervals = eating_intervals(trace)
    end = max((iv[-1][1] for iv in intervals.values() if iv), default=0.0)
    samples = []
    t = 0.0
    while t <= end:
        count = sum(
            1
            for node_intervals in intervals.values()
            for s, e in node_intervals
            if s <= t < e
        )
        samples.append(count)
        t += step
    return samples


def export_jsonl(trace: TraceLog, stream: TextIO) -> int:
    """Write the trace as JSON lines; returns the record count."""
    count = 0
    for rec in trace:
        stream.write(json.dumps({
            "time": rec.time,
            "category": rec.category,
            "node": rec.node,
            "detail": {k: _jsonable(v) for k, v in rec.detail.items()},
        }) + "\n")
        count += 1
    return count


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    return repr(value)
