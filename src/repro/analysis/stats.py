"""Summary statistics without external dependencies.

The benchmarks report distributions of response times; a tiny local
implementation keeps the core library dependency-free (numpy is only an
optional extra).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one sample set."""

    count: int
    mean: float
    median: float
    p95: float
    maximum: float
    minimum: float
    stdev: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.3f} median={self.median:.3f} "
            f"p95={self.p95:.3f} max={self.maximum:.3f}"
        )


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample."""
    if not sorted_values:
        raise ValueError("percentile of empty sample")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = fraction * (len(sorted_values) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_values[low]
    weight = rank - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


def summarize(values: Iterable[float]) -> Optional[Summary]:
    """Summary of a sample, or None if it is empty."""
    data = sorted(values)
    if not data:
        return None
    count = len(data)
    mean = sum(data) / count
    variance = sum((v - mean) ** 2 for v in data) / count
    return Summary(
        count=count,
        mean=mean,
        median=percentile(data, 0.5),
        p95=percentile(data, 0.95),
        maximum=data[-1],
        minimum=data[0],
        stdev=math.sqrt(variance),
    )
