"""ASCII table rendering for benchmark output.

Benchmarks print the rows/series the paper's Table 1 (and our derived
experiments) report; this keeps that output aligned and greppable in
``bench_output.txt``.
"""

from __future__ import annotations

from typing import Any, List, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render a fixed-width table with optional title."""
    text_rows: List[List[str]] = [[_format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)
