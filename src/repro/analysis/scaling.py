"""Scaling-law fits for the growth benchmarks.

The E-series benchmarks compare measured growth against asymptotic
claims ("O(n), not O(n^2)").  Fitting a power law ``y = c * x^k`` by
least squares in log-log space gives a single interpretable number —
the empirical exponent k — which both the printed tables and the
assertions can use instead of ad-hoc ratio thresholds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PowerLawFit:
    """``y ≈ coefficient * x ** exponent`` with an R² quality score."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * (x ** self.exponent)

    def __str__(self) -> str:
        return (
            f"y = {self.coefficient:.3g} * x^{self.exponent:.2f} "
            f"(R²={self.r_squared:.3f})"
        )


def fit_power_law(
    xs: Sequence[float], ys: Sequence[float]
) -> PowerLawFit:
    """Least-squares power-law fit in log-log space.

    Requires at least two strictly positive (x, y) pairs.
    """
    if len(xs) != len(ys):
        raise ValueError("x and y lengths differ")
    points: list = [
        (math.log(x), math.log(y))
        for x, y in zip(xs, ys)
        if x > 0 and y > 0
    ]
    if len(points) < 2:
        raise ValueError("need at least two positive points")
    n = len(points)
    mean_x = sum(p[0] for p in points) / n
    mean_y = sum(p[1] for p in points) / n
    sxx = sum((p[0] - mean_x) ** 2 for p in points)
    sxy = sum((p[0] - mean_x) * (p[1] - mean_y) for p in points)
    if sxx == 0:
        raise ValueError("all x values identical")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_total = sum((p[1] - mean_y) ** 2 for p in points)
    ss_resid = sum(
        (p[1] - (slope * p[0] + intercept)) ** 2 for p in points
    )
    r_squared = 1.0 if ss_total == 0 else max(0.0, 1 - ss_resid / ss_total)
    return PowerLawFit(
        exponent=slope,
        coefficient=math.exp(intercept),
        r_squared=r_squared,
    )


def doubling_ratio(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Average growth factor of y per doubling of x.

    2.0 means linear, 4.0 quadratic, ~1.0 constant.  Robust to small
    sample counts where the regression fit is overconfident.
    """
    fit = fit_power_law(xs, ys)
    return 2.0 ** fit.exponent
