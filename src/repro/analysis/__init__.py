"""Post-run analysis helpers: summary statistics and ASCII tables."""

from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import render_table

__all__ = ["Summary", "render_table", "summarize"]
