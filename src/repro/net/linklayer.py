"""The link-level protocol of Section 3.1.

Responsibilities, exactly as the paper assumes of its "lower level":

* keep every node's neighbor set current (the nodes' ``N`` variable);
* deliver LinkUp / LinkDown indications when links form and fail;
* break symmetry at link formation: the indication tells each endpoint
  whether it is the *moving* or the *static* party.  If both endpoints
  are moving, exactly one (the lower ID) receives the static-style
  indication, matching the paper's "e.g., according to their ID's";
* never deliver anything to a crashed node (silent crash model).

The link layer is also the single place protocol code sends messages
through, so it can refuse sends from crashed nodes and offer a local
broadcast primitive.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Protocol, Set

from repro.errors import TopologyError
from repro.net.channel import ChannelLayer
from repro.net.messages import Message
from repro.net.topology import DynamicTopology, LinkDiff
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog, live_trace


class NodeHandler(Protocol):
    """What the link layer requires of a registered node."""

    def on_message(self, src: int, message: Message) -> None: ...

    def on_link_up(self, peer: int, moving: bool) -> None: ...

    def on_link_down(self, peer: int) -> None: ...


class LinkLayer:
    """Neighbor tracking, link indications and message dispatch."""

    def __init__(
        self,
        sim: Simulator,
        topology: DynamicTopology,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self._sim = sim
        self._topology = topology
        self._trace = live_trace(trace)
        self._handlers: Dict[int, NodeHandler] = {}
        self._moving: Set[int] = set()
        self._crashed: Set[int] = set()
        self._channel: Optional[ChannelLayer] = None
        #: Observers called as ``fn(kind, a, b)`` after each link event's
        #: indications have been delivered ("up" / "down"); used by the
        #: safety monitor to validate the post-event state.
        self.observers = []
        #: Messages addressed to crashed nodes (absorbed silently).
        self.messages_to_crashed = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind_channel(self, channel: ChannelLayer) -> None:
        """Attach the channel layer (whose deliver callback is us)."""
        self._channel = channel

    def register(self, node_id: int, handler: NodeHandler) -> None:
        """Register the protocol handler for a node."""
        self._handlers[node_id] = handler

    @property
    def topology(self) -> DynamicTopology:
        return self._topology

    # ------------------------------------------------------------------
    # Queries offered to protocol code (the node's local view)
    # ------------------------------------------------------------------
    def neighbors(self, node_id: int) -> FrozenSet[int]:
        """The node's current neighbor set ``N`` (maintained here).

        Served from the topology's per-node frozenset cache: repeated
        reads between topology changes return the same object.
        """
        return self._topology.neighbors(node_id)

    def sorted_neighbors(self, node_id: int):
        """``N`` in ascending id order (the topology's cached tuple)."""
        return self._topology.sorted_neighbors(node_id)

    def is_moving(self, node_id: int) -> bool:
        """True while the node is inside a movement episode."""
        return node_id in self._moving

    def is_crashed(self, node_id: int) -> bool:
        """True once the node has crashed."""
        return node_id in self._crashed

    def live_nodes(self) -> Iterable[int]:
        """All registered, non-crashed node ids (sorted)."""
        return [n for n in sorted(self._handlers) if n not in self._crashed]

    # ------------------------------------------------------------------
    # Mobility and failure hooks (driven by the runtime)
    # ------------------------------------------------------------------
    def set_moving(self, node_id: int, moving: bool) -> None:
        """Mark a node as moving / static (the Wu-Li start/stop signal)."""
        if moving:
            self._moving.add(node_id)
        else:
            self._moving.discard(node_id)
        if self._trace is not None:
            label = "move.start" if moving else "move.stop"
            self._trace.record(self._sim.now, label, node_id)

    def crash(self, node_id: int) -> None:
        """Silently crash a node: it stops reacting and never moves again."""
        self._crashed.add(node_id)
        self._moving.discard(node_id)
        if self._trace is not None:
            self._trace.record(self._sim.now, "crash", node_id)

    def apply_diff(self, diff: LinkDiff) -> None:
        """Turn one topology diff into LinkUp/LinkDown indications.

        LinkDowns are delivered before LinkUps so that a node that moved
        in one step sees its old neighborhood disappear before the new
        one appears, matching the paper's per-link treatment.
        """
        for a, b in diff.removed:
            if self._channel is not None:
                self._channel.link_down(a, b)
            if self._trace is not None:
                self._trace.record(self._sim.now, "link.down", None, a=a, b=b)
            self._indicate_down(a, b)
            self._indicate_down(b, a)
            for observer in self.observers:
                observer("down", a, b)
        for a, b in diff.added:
            static_end, moving_end = self._assign_roles(a, b)
            if self._trace is not None:
                self._trace.record(
                    self._sim.now, "link.up", None,
                    static=static_end, moving=moving_end,
                )
            # Static endpoint first: it immediately sends its state to
            # the moving endpoint, which is already waiting for it.
            self._indicate_up(static_end, moving_end, moving=False)
            self._indicate_up(moving_end, static_end, moving=True)
            for observer in self.observers:
                observer("up", a, b)

    # ------------------------------------------------------------------
    # Message plane
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, message: Message) -> None:
        """Send a unicast message from a live node to a current neighbor."""
        if src in self._crashed:
            return  # a crashed node emits nothing
        if self._channel is None:
            raise TopologyError("link layer has no channel bound")
        self._channel.send(src, dst, message)

    def broadcast(self, src: int, message: Message) -> None:
        """Send ``message`` to every current neighbor of ``src``.

        Fan-out uses the topology's cached presorted neighbor tuple, so
        repeated broadcasts between topology changes never re-sort.
        """
        if src in self._crashed:
            return
        if self._channel is None:
            raise TopologyError("link layer has no channel bound")
        self._channel.broadcast(
            src, self._topology.sorted_neighbors(src), message
        )

    def deliver(self, src: int, dst: int, message: Message) -> None:
        """Channel-layer delivery callback."""
        if dst in self._crashed:
            self.messages_to_crashed += 1
            return
        handler = self._handlers.get(dst)
        if handler is not None:
            handler.on_message(src, message)

    # ------------------------------------------------------------------
    def _assign_roles(self, a: int, b: int):
        """(static_endpoint, moving_endpoint) for a freshly created link.

        The paper assumes links never form between two static nodes; if
        a scripted scenario violates that (e.g. by teleporting a third
        party), we still break symmetry deterministically by ID.
        """
        a_moving = a in self._moving
        b_moving = b in self._moving
        if a_moving and not b_moving:
            return b, a
        if b_moving and not a_moving:
            return a, b
        # Both moving (or, degenerately, neither): lower ID plays static.
        return (a, b) if a < b else (b, a)

    def _indicate_up(self, node_id: int, peer: int, moving: bool) -> None:
        if node_id in self._crashed:
            return
        handler = self._handlers.get(node_id)
        if handler is not None:
            handler.on_link_up(peer, moving)

    def _indicate_down(self, node_id: int, peer: int) -> None:
        if node_id in self._crashed:
            return
        handler = self._handlers.get(node_id)
        if handler is not None:
            handler.on_link_down(peer)
