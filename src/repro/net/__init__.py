"""Network substrate: topology, channels and the link-level protocol.

The paper's system model (Section 3.1) assumes:

* bidirectional, reliable, FIFO links with message delay bounded by ``nu``;
* a link-level protocol that notifies each node of link formations and
  failures, and that distinguishes the *static* endpoint from the
  *moving* endpoint of a new link (ties between two moving nodes broken
  deterministically, e.g. by ID);
* links change only when at least one endpoint moves;
* per-link forks created at link formation, owned by the static endpoint.

This package implements exactly that contract on top of a unit-disk
radio model over node positions.
"""

from repro.net.channel import ChannelLayer
from repro.net.geometry import Point, distance
from repro.net.linklayer import LinkLayer
from repro.net.messages import Message
from repro.net.topology import DynamicTopology, LinkDiff

__all__ = [
    "ChannelLayer",
    "DynamicTopology",
    "LinkDiff",
    "LinkLayer",
    "Message",
    "Point",
    "distance",
]
