"""Base message type shared by all protocols.

Concrete protocol messages (fork requests, doorway cross/exit
broadcasts, coloring rounds...) subclass :class:`Message` inside their
own packages; the channel layer only cares about size accounting and a
human-readable kind.

``kind`` is a *class* attribute stamped by ``__init_subclass__`` — the
channel reads it on every send for stats and tracing, so it must not
cost a ``type(self).__name__`` round-trip per message.  Protocol
message classes are declared with ``@dataclass(frozen=True,
slots=True)``; the slots keep per-message memory flat and attribute
access cheap on the delivery path.  (Plain ``@dataclass(frozen=True)``
subclasses still work — test fixtures use them — they just carry a
``__dict__``.)

Field-light messages (no payload, or a payload drawn from a small
finite set: ``ForkRequest``, ``ForkGrant(flag)``, ``Notification``,
``Switch``, the doorway broadcasts) additionally use :func:`interned`:
construction returns one shared immutable instance per distinct field
tuple instead of allocating per send.  Because messages are frozen and
compared by value, interning is observationally identical — it only
removes the per-message allocation on the hottest send paths.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields


@dataclass(frozen=True, slots=True)
class Message:
    """Immutable base class for protocol messages.

    Subclasses add payload fields; :attr:`kind` is the class name,
    cached on the class at definition time, which keeps traces and
    metric breakdowns readable without per-class boilerplate.
    """

    #: Short message type label used for tracing and accounting.
    #: Overwritten with the subclass name by ``__init_subclass__``.
    kind = "Message"

    def __init_subclass__(cls, **kwargs) -> None:
        # No zero-arg super() here: ``slots=True`` re-creates classes,
        # leaving the method's __class__ cell pointing at the original,
        # which breaks super()'s subtype check for grandchildren.
        object.__init_subclass__(**kwargs)
        cls.kind = cls.__name__

    def describe(self) -> str:
        """Compact payload rendering for traces."""
        parts = []
        for f in fields(self):
            parts.append(f"{f.name}={getattr(self, f.name)!r}")
        return f"{self.kind}({', '.join(parts)})"


def interned(cls):
    """Class decorator: memoize instances of a field-light frozen message.

    ``cls(*args)`` returns one shared instance per distinct (hashable)
    field tuple, so the protocol hot paths stop allocating a fresh
    object per send.  Only apply this to frozen messages whose field
    values come from a small finite set — the intern table is never
    evicted.

    Subclasses are exempt (they get ordinary fresh instances), and
    pickling round-trips through the constructor via ``__reduce__`` so
    an unpickled message resolves to the interned instance instead of
    mutating a shared one through ``__setstate__``.
    """
    names = tuple(f.name for f in fields(cls))
    defaults = {
        f.name: f.default for f in fields(cls) if f.default is not MISSING
    }
    cache = {}

    def __new__(klass, *args, **kwargs):
        if klass is not cls:
            return object.__new__(klass)
        if kwargs or len(args) != len(names):
            merged = dict(zip(names, args))
            merged.update(kwargs)
            args = tuple(
                merged[n] if n in merged else defaults[n] for n in names
            )
        instance = cache.get(args)
        if instance is None:
            instance = object.__new__(klass)
            cache[args] = instance
        return instance

    def __reduce__(self):
        return (cls, tuple(getattr(self, n) for n in names))

    cls.__new__ = __new__
    cls.__reduce__ = __reduce__
    return cls
