"""Base message type shared by all protocols.

Concrete protocol messages (fork requests, doorway cross/exit
broadcasts, coloring rounds...) subclass :class:`Message` inside their
own packages; the channel layer only cares about size accounting and a
human-readable kind.

``kind`` is a *class* attribute stamped by ``__init_subclass__`` — the
channel reads it on every send for stats and tracing, so it must not
cost a ``type(self).__name__`` round-trip per message.  Protocol
message classes are declared with ``@dataclass(frozen=True,
slots=True)``; the slots keep per-message memory flat and attribute
access cheap on the delivery path.  (Plain ``@dataclass(frozen=True)``
subclasses still work — test fixtures use them — they just carry a
``__dict__``.)
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True, slots=True)
class Message:
    """Immutable base class for protocol messages.

    Subclasses add payload fields; :attr:`kind` is the class name,
    cached on the class at definition time, which keeps traces and
    metric breakdowns readable without per-class boilerplate.
    """

    #: Short message type label used for tracing and accounting.
    #: Overwritten with the subclass name by ``__init_subclass__``.
    kind = "Message"

    def __init_subclass__(cls, **kwargs) -> None:
        # No zero-arg super() here: ``slots=True`` re-creates classes,
        # leaving the method's __class__ cell pointing at the original,
        # which breaks super()'s subtype check for grandchildren.
        object.__init_subclass__(**kwargs)
        cls.kind = cls.__name__

    def describe(self) -> str:
        """Compact payload rendering for traces."""
        parts = []
        for f in fields(self):
            parts.append(f"{f.name}={getattr(self, f.name)!r}")
        return f"{self.kind}({', '.join(parts)})"
