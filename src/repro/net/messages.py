"""Base message type shared by all protocols.

Concrete protocol messages (fork requests, doorway cross/exit
broadcasts, coloring rounds...) subclass :class:`Message` inside their
own packages; the channel layer only cares about size accounting and a
human-readable kind.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class Message:
    """Immutable base class for protocol messages.

    Subclasses add payload fields; :attr:`kind` defaults to the class
    name which keeps traces and metric breakdowns readable without
    per-class boilerplate.
    """

    @property
    def kind(self) -> str:
        """Short message type label used for tracing and accounting."""
        return type(self).__name__

    def describe(self) -> str:
        """Compact payload rendering for traces."""
        parts = []
        for f in fields(self):
            parts.append(f"{f.name}={getattr(self, f.name)!r}")
        return f"{self.kind}({', '.join(parts)})"
