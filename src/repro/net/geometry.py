"""Planar geometry for the unit-disk radio model."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Tuple


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable 2D position (slotted: city-scale scenarios hold one
    per node, so the per-instance ``__dict__`` is worth dropping)."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def towards(self, other: "Point", step: float) -> "Point":
        """Move ``step`` units toward ``other`` (clamping at ``other``)."""
        total = self.distance_to(other)
        if total <= step or total == 0.0:
            return other
        frac = step / total
        return Point(self.x + (other.x - self.x) * frac,
                     self.y + (other.y - self.y) * frac)

    def __iter__(self):
        yield self.x
        yield self.y


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return a.distance_to(b)


def segment_points(start: Point, end: Point, step: float) -> List[Point]:
    """Waypoints from ``start`` to ``end`` every ``step`` units.

    The end point is always included; the start point never is.  Used by
    the mobility controller to advance a moving node in discrete hops so
    that connectivity is re-evaluated along the whole path, not only at
    the destination.
    """
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    points: List[Point] = []
    current = start
    while current != end:
        current = current.towards(end, step)
        points.append(current)
    return points


def grid_positions(count: int, spacing: float, columns: int = 0) -> List[Point]:
    """Lay out ``count`` points on a grid with the given spacing.

    With ``columns == 0`` the grid is (near-)square.  Handy for building
    topologies with a known maximum degree.
    """
    if columns <= 0:
        columns = max(1, math.ceil(math.sqrt(count)))
    return [
        Point((i % columns) * spacing, (i // columns) * spacing)
        for i in range(count)
    ]


def line_positions(count: int, spacing: float) -> List[Point]:
    """Lay out ``count`` points on a line (a path graph under unit disk)."""
    return [Point(i * spacing, 0.0) for i in range(count)]


def ring_positions(count: int, radius: float) -> List[Point]:
    """Lay out ``count`` points evenly on a circle."""
    return [
        Point(radius * math.cos(2 * math.pi * i / count),
              radius * math.sin(2 * math.pi * i / count))
        for i in range(count)
    ]


def random_positions(count: int, width: float, height: float, rng) -> List[Point]:
    """Uniformly random points in a ``width x height`` rectangle."""
    return [Point(rng.uniform(0, width), rng.uniform(0, height))
            for _ in range(count)]


def bounding_box(points: Iterable[Point]) -> Tuple[Point, Point]:
    """(min-corner, max-corner) of a non-empty point collection."""
    pts = list(points)
    if not pts:
        raise ValueError("bounding_box of empty point collection")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return Point(min(xs), min(ys)), Point(max(xs), max(ys))
