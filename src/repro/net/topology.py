"""Dynamic unit-disk topology.

The communication graph is derived from node positions: two nodes are
neighbors iff their Euclidean distance is at most the radio range.
Moving a node produces a :class:`LinkDiff` — the set of links that came
up and went down — which the link layer turns into LinkUp/LinkDown
indications.

The topology also answers graph-distance queries (used to *measure*
failure locality) and degree statistics (used to report ``delta``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import TopologyError
from repro.net.geometry import Point

Link = Tuple[int, int]


def link_key(a: int, b: int) -> Link:
    """Canonical (sorted) representation of an undirected link."""
    return (a, b) if a < b else (b, a)


@dataclass
class LinkDiff:
    """Links created and destroyed by one position update."""

    added: List[Link] = field(default_factory=list)
    removed: List[Link] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.added and not self.removed


class DynamicTopology:
    """Node positions plus the induced unit-disk communication graph."""

    def __init__(self, radio_range: float = 1.0) -> None:
        if radio_range <= 0:
            raise TopologyError(f"radio range must be positive, got {radio_range}")
        self.radio_range = radio_range
        self._positions: Dict[int, Point] = {}
        self._adjacency: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, position: Point) -> LinkDiff:
        """Add a node; returns the links its arrival created."""
        if node_id in self._positions:
            raise TopologyError(f"node {node_id} already exists")
        self._positions[node_id] = position
        self._adjacency[node_id] = set()
        diff = LinkDiff()
        for other, other_pos in self._positions.items():
            if other == node_id:
                continue
            if position.distance_to(other_pos) <= self.radio_range:
                self._adjacency[node_id].add(other)
                self._adjacency[other].add(node_id)
                diff.added.append(link_key(node_id, other))
        return diff

    def remove_node(self, node_id: int) -> LinkDiff:
        """Remove a node; returns the links its departure destroyed."""
        self._require(node_id)
        diff = LinkDiff()
        for other in list(self._adjacency[node_id]):
            self._adjacency[other].discard(node_id)
            diff.removed.append(link_key(node_id, other))
        del self._adjacency[node_id]
        del self._positions[node_id]
        return diff

    def nodes(self) -> List[int]:
        """All node ids, sorted (stable iteration order for determinism)."""
        return sorted(self._positions)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    # ------------------------------------------------------------------
    # Positions and movement
    # ------------------------------------------------------------------
    def position(self, node_id: int) -> Point:
        """Current position of a node."""
        self._require(node_id)
        return self._positions[node_id]

    def set_position(self, node_id: int, position: Point) -> LinkDiff:
        """Move a node and return the induced link changes."""
        self._require(node_id)
        self._positions[node_id] = position
        diff = LinkDiff()
        current = self._adjacency[node_id]
        for other, other_pos in self._positions.items():
            if other == node_id:
                continue
            in_range = position.distance_to(other_pos) <= self.radio_range
            if in_range and other not in current:
                current.add(other)
                self._adjacency[other].add(node_id)
                diff.added.append(link_key(node_id, other))
            elif not in_range and other in current:
                current.discard(other)
                self._adjacency[other].discard(node_id)
                diff.removed.append(link_key(node_id, other))
        return diff

    # ------------------------------------------------------------------
    # Graph queries
    # ------------------------------------------------------------------
    def neighbors(self, node_id: int) -> FrozenSet[int]:
        """The current neighbor set of a node."""
        self._require(node_id)
        return frozenset(self._adjacency[node_id])

    def has_link(self, a: int, b: int) -> bool:
        """True iff nodes a and b are currently neighbors."""
        return b in self._adjacency.get(a, ())

    def links(self) -> List[Link]:
        """All current links, canonically keyed and sorted."""
        seen: Set[Link] = set()
        for a, nbrs in self._adjacency.items():
            for b in nbrs:
                seen.add(link_key(a, b))
        return sorted(seen)

    def degree(self, node_id: int) -> int:
        """Current degree of a node."""
        self._require(node_id)
        return len(self._adjacency[node_id])

    def max_degree(self) -> int:
        """delta — the maximum degree over all nodes (0 if empty)."""
        if not self._adjacency:
            return 0
        return max(len(nbrs) for nbrs in self._adjacency.values())

    def graph_distance(self, source: int, target: int) -> Optional[int]:
        """Hop distance between two nodes, or None if disconnected."""
        self._require(source)
        self._require(target)
        if source == target:
            return 0
        seen = {source}
        frontier = deque([(source, 0)])
        while frontier:
            node, dist = frontier.popleft()
            for nbr in self._adjacency[node]:
                if nbr == target:
                    return dist + 1
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append((nbr, dist + 1))
        return None

    def distances_from(self, source: int) -> Dict[int, int]:
        """Hop distances from ``source`` to every reachable node."""
        self._require(source)
        dist = {source: 0}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            for nbr in self._adjacency[node]:
                if nbr not in dist:
                    dist[nbr] = dist[node] + 1
                    frontier.append(nbr)
        return dist

    def m_neighborhood(self, node_id: int, m: int) -> Set[int]:
        """All nodes within hop distance ``m`` of ``node_id`` (inclusive)."""
        return {n for n, d in self.distances_from(node_id).items() if d <= m}

    def is_connected(self) -> bool:
        """True iff the communication graph is connected (or empty)."""
        ids = self.nodes()
        if len(ids) <= 1:
            return True
        return len(self.distances_from(ids[0])) == len(ids)

    def components(self) -> List[Set[int]]:
        """Connected components of the communication graph."""
        remaining = set(self._positions)
        result: List[Set[int]] = []
        while remaining:
            root = min(remaining)
            component = set(self.distances_from(root))
            result.append(component)
            remaining -= component
        return result

    # ------------------------------------------------------------------
    def _require(self, node_id: int) -> None:
        if node_id not in self._positions:
            raise TopologyError(f"unknown node {node_id}")
