"""Dynamic unit-disk topology.

The communication graph is derived from node positions: two nodes are
neighbors iff their Euclidean distance is at most the radio range.
Moving a node produces a :class:`LinkDiff` — the set of links that came
up and went down — which the link layer turns into LinkUp/LinkDown
indications.

The topology also answers graph-distance queries (used to *measure*
failure locality) and degree statistics (used to report ``delta``).

Scaling notes
-------------

Positions are stored in two flat ``array('d')`` columns indexed by node
id (plus the insertion-ordered ``_rank`` dict for membership), not in a
per-node dict of :class:`Point` objects: the distance tests on the hot
update paths read unboxed doubles straight out of the arrays, and a
city-scale topology carries ~16 bytes per node of position state
instead of a dict entry plus a boxed point.  :meth:`position`
materializes a ``Point`` on demand for callers that want one.  The
degree histogram backing ``max_degree`` is likewise a contiguous list
indexed by degree.

Membership and movement are served by a **spatial-hash grid** whose
cell size equals the radio range: a node within range of position
``p`` must sit in one of the 9 cells surrounding ``p``'s cell, so
``add_node`` / ``set_position`` / ``remove_node`` examine only local
candidates instead of every node (O(density) instead of O(n) per
update).  The original full scan is kept behind ``brute_force=True``
and the two paths are bit-identical — same links, same ``LinkDiff``
ordering — which ``tests/test_topology_grid.py`` asserts over
randomized workloads.

``max_degree`` (the ``delta`` the link layer reports frequently) is
tracked incrementally through a degree histogram rather than being
recomputed with a full pass per call.

A monotone :attr:`~DynamicTopology.version` counter ticks on every
membership or link change (never on a pure position update), and backs
three caches: the per-node ``neighbors()`` frozenset, the presorted
``sorted_neighbors()`` tuple, and a one-slot BFS memo serving
``distances_from`` (the failure-locality metric issues the same source
repeatedly against an unchanged graph).

``set_positions`` applies a whole batch of same-instant moves in one
grid pass and emits a single merged, deterministically ordered
:class:`LinkDiff` — the entry point the kinetic mobility engine
(:mod:`repro.mobility.kinetic`) uses for crossing/arrival updates.
"""

from __future__ import annotations

import itertools
import math
from array import array
from collections import deque
from collections.abc import Set as AbstractSet
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import TopologyError
from repro.net.geometry import Point

Link = Tuple[int, int]

Cell = Tuple[int, int]

#: Relative slack on the grid cell size.  Cells are fractionally larger
#: than the radio range so that floating-point rounding in the
#: coordinate-to-cell division can never push two in-range nodes more
#: than one cell apart; the exact distance test still decides linkage.
_CELL_SLACK = 1e-9


def link_key(a: int, b: int) -> Link:
    """Canonical (sorted) representation of an undirected link."""
    return (a, b) if a < b else (b, a)


@dataclass
class LinkDiff:
    """Links created and destroyed by one position update."""

    added: List[Link] = field(default_factory=list)
    removed: List[Link] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.added and not self.removed


class DynamicTopology:
    """Node positions plus the induced unit-disk communication graph.

    Args:
        radio_range: link distance threshold (inclusive).
        brute_force: serve updates with the original all-pairs scan
            instead of the grid index.  Same results, O(n) per update;
            exists for equivalence testing and benchmarking.
    """

    def __init__(self, radio_range: float = 1.0, brute_force: bool = False) -> None:
        if radio_range <= 0:
            raise TopologyError(f"radio range must be positive, got {radio_range}")
        self.radio_range = radio_range
        self.brute_force = brute_force
        # Position columns, indexed by node id; slots of removed nodes
        # go stale and membership lives in ``_rank`` (insertion-ordered,
        # maintained in lockstep with the old position dict's order).
        self._xs: array = array("d")
        self._ys: array = array("d")
        self._adjacency: Dict[int, Set[int]] = {}
        # Spatial-hash grid (maintained even in brute-force mode so the
        # flag stays flippable and maintenance stays O(1) per update).
        self._cell_size = radio_range * (1.0 + _CELL_SLACK)
        self._grid: Dict[Cell, Set[int]] = {}
        self._node_cell: Dict[int, Cell] = {}
        # Insertion ranks reproduce the brute-force scan's dict
        # iteration order, keeping LinkDiff ordering bit-identical.
        # Doubles as the membership map.
        self._rank: Dict[int, int] = {}
        self._rank_counter = itertools.count()
        # Degree histogram, indexed by degree (contiguous — degrees are
        # small and dense, so a list beats a dict on the 4-updates-per-
        # link hot path).
        self._degree_counts: List[int] = []
        self._max_degree = 0
        # Lazily built ascending neighbor tuples, invalidated per node
        # on link/unlink; serves broadcast fan-out without re-sorting.
        self._sorted_neighbors: Dict[int, Tuple[int, ...]] = {}
        # Lazily built neighbor frozensets, same invalidation scheme;
        # serves the protocol layer's per-message neighbors() reads.
        self._frozen_neighbors: Dict[int, FrozenSet[int]] = {}
        #: Monotone graph version: bumps on any membership or link
        #: change, never on a pure position update.  External caches
        #: (and the BFS memo below) key on it.
        self.version = 0
        # One-slot BFS memo: (version, source) -> distance dict.
        self._bfs_key: Optional[Tuple[int, int]] = None
        self._bfs_result: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def _store_position(self, node_id: int, position: Point) -> None:
        """Write a node's coordinates into the position columns."""
        xs = self._xs
        if node_id >= len(xs):
            grow = node_id + 1 - len(xs)
            xs.extend([0.0] * grow)
            self._ys.extend([0.0] * grow)
        xs[node_id] = position.x
        self._ys[node_id] = position.y

    def add_node(self, node_id: int, position: Point) -> LinkDiff:
        """Add a node; returns the links its arrival created."""
        if node_id in self._rank:
            raise TopologyError(f"node {node_id} already exists")
        self.version += 1
        self._store_position(node_id, position)
        self._adjacency[node_id] = set()
        self._rank[node_id] = next(self._rank_counter)
        self._grid_insert(node_id, position)
        self._count_degree(0, +1)
        diff = LinkDiff()
        radio = self.radio_range
        xs, ys = self._xs, self._ys
        px, py = position.x, position.y
        hypot = math.hypot
        for other in self._scan_candidates(node_id, position):
            if hypot(px - xs[other], py - ys[other]) <= radio:
                self._link(node_id, other)
                diff.added.append(link_key(node_id, other))
        return diff

    def add_nodes(self, nodes: Iterable[Tuple[int, Point]]) -> None:
        """Bulk node insertion: the O(n + links) bootstrap path.

        Final state — positions, ranks, grid, adjacency, degree
        histogram, ``version`` — is exactly what the same sequence of
        :meth:`add_node` calls produces; only the per-arrival
        :class:`LinkDiff` is skipped, which is why this is reserved for
        construction time (nobody consumes arrival diffs there).  Every
        candidate pair is examined once (each node links against the
        lower-insertion-rank part of its grid window) and the degree
        histogram is rebuilt in one pass at the end instead of being
        nudged four times per link.
        """
        items = list(nodes)
        if not items:
            return
        rank = self._rank
        adjacency = self._adjacency
        rank_counter = self._rank_counter
        xs, ys = self._xs, self._ys
        # One bulk growth of the position columns: add_node grows them
        # per arrival, but here the final extent is known up front.
        top = max(node_id for node_id, _ in items)
        if top >= len(xs):
            grow = top + 1 - len(xs)
            xs.extend([0.0] * grow)
            ys.extend([0.0] * grow)
        grid = self._grid
        node_cell = self._node_cell
        size = self._cell_size
        floor = math.floor
        for node_id, position in items:
            if node_id in rank:
                raise TopologyError(f"node {node_id} already exists")
            px = xs[node_id] = position.x
            py = ys[node_id] = position.y
            adjacency[node_id] = set()
            rank[node_id] = next(rank_counter)
            cell = (floor(px / size), floor(py / size))
            bucket = grid.get(cell)
            if bucket is None:
                bucket = grid[cell] = set()
            bucket.add(node_id)
            node_cell[node_id] = cell
        radio = self.radio_range
        hypot = math.hypot
        links = 0
        for node_id, position in items:
            px, py = position.x, position.y
            my_rank = rank[node_id]
            nbrs = adjacency[node_id]
            cx, cy = floor(px / size), floor(py / size)
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    bucket = grid.get((cx + dx, cy + dy))
                    if not bucket:
                        continue
                    for other in bucket:
                        if (
                            rank[other] < my_rank
                            and hypot(px - xs[other], py - ys[other]) <= radio
                        ):
                            nbrs.add(other)
                            adjacency[other].add(node_id)
                            links += 1
        # add_node bumps version once per arrival and once per link.
        self.version += len(items) + links
        if links:
            self._sorted_neighbors.clear()
            self._frozen_neighbors.clear()
        self._rebuild_degree_histogram()

    def _rebuild_degree_histogram(self) -> None:
        counts: List[int] = []
        for nbrs in self._adjacency.values():
            degree = len(nbrs)
            if degree >= len(counts):
                counts.extend([0] * (degree + 1 - len(counts)))
            counts[degree] += 1
        self._degree_counts = counts
        self._max_degree = len(counts) - 1 if counts else 0

    def upsert_node(self, node_id: int, position: Point) -> LinkDiff:
        """Add the node if absent, else move it to ``position``.

        Ghost/halo ingestion in the sharded engine: the same barrier
        update stream carries both first appearances and refreshes of
        boundary-adjacent remote nodes.
        """
        if node_id in self._rank:
            return self.set_position(node_id, position)
        return self.add_node(node_id, position)

    def remove_node(self, node_id: int) -> LinkDiff:
        """Remove a node; returns the links its departure destroyed."""
        self._require(node_id)
        self.version += 1
        diff = LinkDiff()
        for other in list(self._adjacency[node_id]):
            self._unlink(node_id, other)
            diff.removed.append(link_key(node_id, other))
        self._count_degree(0, -1)
        self._grid_discard(node_id)
        self._sorted_neighbors.pop(node_id, None)
        self._frozen_neighbors.pop(node_id, None)
        del self._adjacency[node_id]
        del self._rank[node_id]
        # The position-array slot goes stale; membership is _rank.
        return diff

    def nodes(self) -> List[int]:
        """All node ids, sorted (stable iteration order for determinism)."""
        return sorted(self._rank)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._rank

    def __len__(self) -> int:
        return len(self._rank)

    # ------------------------------------------------------------------
    # Positions and movement
    # ------------------------------------------------------------------
    def position(self, node_id: int) -> Point:
        """Current position of a node (materialized from the columns)."""
        self._require(node_id)
        return Point(self._xs[node_id], self._ys[node_id])

    def set_position(self, node_id: int, position: Point) -> LinkDiff:
        """Move a node and return the induced link changes."""
        self._require(node_id)
        self._store_position(node_id, position)
        self._grid_move(node_id, position)
        diff = LinkDiff()
        current = self._adjacency[node_id]
        radio = self.radio_range
        xs, ys = self._xs, self._ys
        px, py = position.x, position.y
        hypot = math.hypot
        for other in self._scan_candidates(node_id, position, extra=current):
            in_range = hypot(px - xs[other], py - ys[other]) <= radio
            if in_range and other not in current:
                self._link(node_id, other)
                diff.added.append(link_key(node_id, other))
            elif not in_range and other in current:
                self._unlink(node_id, other)
                diff.removed.append(link_key(node_id, other))
        return diff

    def reposition(self, node_id: int, position: Point) -> bool:
        """Refresh a node's stored position and grid cell — no link scan.

        For callers that know no link can change at this instant: the
        kinetic engine's horizon refresh only combats grid staleness,
        every link toggle involving the mover being covered by a
        scheduled crossing certificate.  Adjacency is re-evaluated at
        the node's next ``set_position(s)`` call (crossing, arrival,
        freeze), so even a dropped grazing contact cannot outlive the
        flight.

        Returns True iff the node's grid *cell* changed — the signal
        the kinetic engine keys its discovery re-scan on.
        """
        self._require(node_id)
        self._store_position(node_id, position)
        return self._grid_move(node_id, position)

    def set_positions(
        self,
        batch: Iterable[Tuple[int, Point]],
        deferred: Iterable[int] = (),
    ) -> LinkDiff:
        """Apply same-instant moves in one grid pass; one merged diff.

        All stored positions (and grid cells) are updated first, then
        each mover's candidate window is evaluated in batch order, so a
        pair of movers is judged on both *final* positions exactly once.
        Diff entries follow batch order and, within a mover, the same
        insertion-rank order ``set_position`` uses — a singleton batch
        is bit-identical to ``set_position``.

        ``deferred`` names nodes whose pair evaluations are skipped
        (unless they are in the batch themselves).  The kinetic mobility
        engine passes its other mid-flight nodes here: their *stored*
        positions are stale between repositioning events, and every
        crossing involving them is already covered by that pair's own
        scheduled certificate — skipping them avoids spurious toggles.
        """
        moves = list(batch)
        diff = LinkDiff()
        if not moves:
            return diff
        moved: Set[int] = set()
        for node_id, _ in moves:
            self._require(node_id)
            if node_id in moved:
                raise TopologyError(
                    f"node {node_id} appears twice in one position batch"
                )
            moved.add(node_id)
        for node_id, position in moves:
            self._store_position(node_id, position)
            self._grid_move(node_id, position)
        if not isinstance(deferred, AbstractSet):
            deferred = set(deferred)
        seen_pairs: Set[Link] = set()
        radio = self.radio_range
        xs, ys = self._xs, self._ys
        hypot = math.hypot
        for node_id, position in moves:
            current = self._adjacency[node_id]
            px, py = position.x, position.y
            for other in self._scan_candidates(node_id, position, extra=current):
                if other in deferred and other not in moved:
                    continue
                if other in moved:
                    pair = link_key(node_id, other)
                    if pair in seen_pairs:
                        continue
                    seen_pairs.add(pair)
                in_range = hypot(px - xs[other], py - ys[other]) <= radio
                if in_range and other not in current:
                    self._link(node_id, other)
                    diff.added.append(link_key(node_id, other))
                elif not in_range and other in current:
                    self._unlink(node_id, other)
                    diff.removed.append(link_key(node_id, other))
        return diff

    def force_link(self, a: int, b: int, up: bool) -> LinkDiff:
        """Set one link's state directly, ignoring node positions.

        Used by scripted link schedules (live-run replay): the recorded
        churn is the ground truth, not the unit-disk geometry.  Returns
        the resulting :class:`LinkDiff` — empty when the link is already
        in the requested state.
        """
        self._require(a)
        self._require(b)
        if a == b:
            raise TopologyError(f"cannot link node {a} to itself")
        diff = LinkDiff()
        if up and not self.has_link(a, b):
            self._link(a, b)
            diff.added.append(link_key(a, b))
        elif not up and self.has_link(a, b):
            self._unlink(a, b)
            diff.removed.append(link_key(a, b))
        return diff

    # ------------------------------------------------------------------
    # Graph queries
    # ------------------------------------------------------------------
    def neighbors(self, node_id: int) -> FrozenSet[int]:
        """The current neighbor set of a node (cached frozenset).

        The protocol layer reads ``N`` on nearly every message; the
        frozenset is built once per (node, graph change) instead of per
        call, invalidated by link/unlink exactly like the presorted
        tuple below.
        """
        cached = self._frozen_neighbors.get(node_id)
        if cached is None:
            self._require(node_id)
            cached = frozenset(self._adjacency[node_id])
            self._frozen_neighbors[node_id] = cached
        return cached

    def sorted_neighbors(self, node_id: int) -> Tuple[int, ...]:
        """The current neighbors in ascending id order (cached).

        The broadcast fan-out order of every protocol, served from a
        per-node cache that link/unlink invalidates — repeated
        broadcasts between topology changes never re-sort.
        """
        cached = self._sorted_neighbors.get(node_id)
        if cached is None:
            self._require(node_id)
            cached = tuple(sorted(self._adjacency[node_id]))
            self._sorted_neighbors[node_id] = cached
        return cached

    def has_link(self, a: int, b: int) -> bool:
        """True iff nodes a and b are currently neighbors."""
        return b in self._adjacency.get(a, ())

    def links(self) -> List[Link]:
        """All current links, canonically keyed and sorted."""
        seen: Set[Link] = set()
        for a, nbrs in self._adjacency.items():
            for b in nbrs:
                seen.add(link_key(a, b))
        return sorted(seen)

    def degree(self, node_id: int) -> int:
        """Current degree of a node."""
        self._require(node_id)
        return len(self._adjacency[node_id])

    def max_degree(self) -> int:
        """delta — the maximum degree over all nodes (0 if empty)."""
        return self._max_degree

    def graph_distance(self, source: int, target: int) -> Optional[int]:
        """Hop distance between two nodes, or None if disconnected."""
        self._require(source)
        self._require(target)
        if source == target:
            return 0
        seen = {source}
        frontier = deque([(source, 0)])
        while frontier:
            node, dist = frontier.popleft()
            for nbr in self._adjacency[node]:
                if nbr == target:
                    return dist + 1
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append((nbr, dist + 1))
        return None

    def distances_from(self, source: int) -> Dict[int, int]:
        """Hop distances from ``source`` to every reachable node.

        Memoized against :attr:`version` for the last source queried —
        the failure-locality metric walks the same crash node's distance
        map repeatedly against an unchanged end-of-run graph.  Treat the
        returned dict as read-only.
        """
        self._require(source)
        key = (self.version, source)
        if key == self._bfs_key:
            return self._bfs_result
        dist = {source: 0}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            for nbr in self._adjacency[node]:
                if nbr not in dist:
                    dist[nbr] = dist[node] + 1
                    frontier.append(nbr)
        self._bfs_key = key
        self._bfs_result = dist
        return dist

    def m_neighborhood(self, node_id: int, m: int) -> Set[int]:
        """All nodes within hop distance ``m`` of ``node_id`` (inclusive)."""
        return {n for n, d in self.distances_from(node_id).items() if d <= m}

    def is_connected(self) -> bool:
        """True iff the communication graph is connected (or empty)."""
        ids = self.nodes()
        if len(ids) <= 1:
            return True
        return len(self.distances_from(ids[0])) == len(ids)

    def components(self) -> List[Set[int]]:
        """Connected components of the communication graph."""
        remaining = set(self._rank)
        result: List[Set[int]] = []
        while remaining:
            root = min(remaining)
            component = set(self.distances_from(root))
            result.append(component)
            remaining -= component
        return result

    # ------------------------------------------------------------------
    # Internal: candidate scans
    # ------------------------------------------------------------------
    def _scan_candidates(
        self,
        node_id: int,
        position: Point,
        extra: Iterable[int] = (),
    ) -> List[int]:
        """Nodes that could gain or lose a link to ``node_id``.

        Brute-force mode returns every other node; grid mode returns the
        9 cells around ``position`` plus ``extra`` (current neighbors,
        which may have fallen outside that window).  Either way the
        result follows ``_rank`` insertion order, so both paths emit
        LinkDiff entries in the same order.
        """
        if self.brute_force:
            return [other for other in self._rank if other != node_id]
        candidates: Set[int] = set(extra)
        grid = self._grid
        cx, cy = self._cell_of(position)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                bucket = grid.get((cx + dx, cy + dy))
                if bucket:
                    candidates.update(bucket)
        candidates.discard(node_id)
        rank = self._rank
        return sorted(candidates, key=rank.__getitem__)

    def nearby_nodes(self, position: Point, rings: int = 1) -> List[int]:
        """Nodes whose *stored* position lies within ``rings`` grid
        cells of ``position``, in insertion-rank order.

        The kinetic mobility engine uses a wider-than-default window
        (``rings=3``) for certificate discovery: a mid-flight node's
        stored position is refreshed at least every half radio range of
        travel, so any pair that can cross the range before the next
        refresh of either endpoint sits within three cells.
        """
        grid = self._grid
        cx, cy = self._cell_of(position)
        candidates: Set[int] = set()
        for dx in range(-rings, rings + 1):
            for dy in range(-rings, rings + 1):
                bucket = grid.get((cx + dx, cy + dy))
                if bucket:
                    candidates.update(bucket)
        rank = self._rank
        return sorted(candidates, key=rank.__getitem__)

    # ------------------------------------------------------------------
    # Internal: grid maintenance
    # ------------------------------------------------------------------
    def _cell_of(self, position: Point) -> Cell:
        size = self._cell_size
        return (math.floor(position.x / size), math.floor(position.y / size))

    def _grid_insert(self, node_id: int, position: Point) -> None:
        cell = self._cell_of(position)
        self._grid.setdefault(cell, set()).add(node_id)
        self._node_cell[node_id] = cell

    def _grid_discard(self, node_id: int) -> None:
        cell = self._node_cell.pop(node_id)
        bucket = self._grid[cell]
        bucket.discard(node_id)
        if not bucket:
            del self._grid[cell]

    def _grid_move(self, node_id: int, position: Point) -> bool:
        """Re-bucket a node; True iff its grid cell changed."""
        new_cell = self._cell_of(position)
        old_cell = self._node_cell[node_id]
        if new_cell == old_cell:
            return False
        bucket = self._grid[old_cell]
        bucket.discard(node_id)
        if not bucket:
            del self._grid[old_cell]
        self._grid.setdefault(new_cell, set()).add(node_id)
        self._node_cell[node_id] = new_cell
        return True

    # ------------------------------------------------------------------
    # Internal: adjacency + degree histogram
    # ------------------------------------------------------------------
    def _link(self, a: int, b: int) -> None:
        self.version += 1
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        self._sorted_neighbors.pop(a, None)
        self._sorted_neighbors.pop(b, None)
        self._frozen_neighbors.pop(a, None)
        self._frozen_neighbors.pop(b, None)
        self._count_degree(len(self._adjacency[a]) - 1, -1)
        self._count_degree(len(self._adjacency[a]), +1)
        self._count_degree(len(self._adjacency[b]) - 1, -1)
        self._count_degree(len(self._adjacency[b]), +1)

    def _unlink(self, a: int, b: int) -> None:
        self.version += 1
        self._adjacency[a].discard(b)
        self._adjacency[b].discard(a)
        self._sorted_neighbors.pop(a, None)
        self._sorted_neighbors.pop(b, None)
        self._frozen_neighbors.pop(a, None)
        self._frozen_neighbors.pop(b, None)
        self._count_degree(len(self._adjacency[a]) + 1, -1)
        self._count_degree(len(self._adjacency[a]), +1)
        self._count_degree(len(self._adjacency[b]) + 1, -1)
        self._count_degree(len(self._adjacency[b]), +1)

    def _count_degree(self, degree: int, delta: int) -> None:
        counts = self._degree_counts
        if degree >= len(counts):
            counts.extend([0] * (degree + 1 - len(counts)))
        counts[degree] += delta
        if delta > 0:
            if degree > self._max_degree:
                self._max_degree = degree
        else:
            while self._max_degree and not counts[self._max_degree]:
                self._max_degree -= 1

    # ------------------------------------------------------------------
    def _require(self, node_id: int) -> None:
        if node_id not in self._rank:
            raise TopologyError(f"unknown node {node_id}")
