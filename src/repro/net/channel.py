"""Reliable FIFO bounded-delay message channels.

One :class:`ChannelLayer` serves the whole network.  Each *directed*
link (src, dst) is a FIFO queue: deliveries on a link are clamped to be
strictly increasing in time even when a later message draws a smaller
random delay.  Delays are bounded by ``nu`` per the paper's model.

Reliability caveat that the paper shares: a link only carries messages
while it exists.  If the link goes down (an endpoint moved) while a
message is in flight, the message is dropped — the algorithms must (and
do) tolerate this, because the paper destroys per-link state (forks, L[]
entries) on link failure.  Messages to crashed nodes are delivered into
the void (the crashed node ignores everything), matching silent crashes.

Fast path
---------

The channel does **not** schedule one engine event per message.  Each
directed link keeps a deque of ``(arrival, seq, message, incarnation)``
entries plus at most one in-flight :class:`ScheduledEvent`; the event's
callback drains the deque.  Two properties make this exactly equivalent
to per-message scheduling:

* per-link arrivals are strictly increasing (the FIFO clamp), so the
  deque is already in delivery order;
* every message claims an engine ordering ticket (``seq``) at *send*
  time, and both the in-flight event and the drain's run-ahead use that
  ticket, so ties against other events resolve exactly as they would
  for an event scheduled at send time.

The drain also *runs ahead*: after delivering the head entry it keeps
delivering queued messages — advancing the engine clock itself — for as
long as each entry's ``(arrival, priority, seq)`` key precedes the
engine's next live event and the active run deadline.  Delivery order
and timestamps are bit-identical to per-message scheduling; what
changes is live heap size (O(links) instead of O(in-flight messages)),
the number of executed engine events, and ``link_down`` cost (queued
messages are dropped by clearing the deque and lazily cancelling one
event instead of leaving dead shells in the heap).

The legacy one-event-per-message path survives behind
``ChannelLayer(..., per_message=True)`` (same pattern as the topology's
``brute_force=True``) and the equivalence suite drives both paths
through identical scenarios asserting identical delivery sequences,
timestamps, drop counts and run metrics.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.errors import TopologyError
from repro.net.messages import Message
from repro.net.topology import DynamicTopology
from repro.sim.clock import TIME_EPSILON, TimeBounds
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority, ScheduledEvent
from repro.sim.trace import TraceLog, live_trace

DeliverFn = Callable[[int, int, Message], None]

#: One queued transmission: (arrival time, engine sort key built from
#: the seq ticket claimed at send time, message, link incarnation).
_QueueEntry = Tuple[float, Tuple[float, int, int], Message, int]

#: Placeholder installed in the in-flight map while a drain is running,
#: so a same-link send during the drain cannot schedule a second event.
_DRAINING = object()

_NORMAL = int(EventPriority.NORMAL)


class ChannelStats:
    """Message accounting: totals plus per-kind breakdowns.

    ``sent``, ``delivered`` and ``dropped_link_down`` count every
    message the channel accepted, handed to the deliver callback, or
    discarded because its link died first; each total has a matching
    ``*_by_kind`` dict keyed on :attr:`Message.kind`.  ``snapshot()``
    returns the full counter set as one plain dict.
    """

    __slots__ = (
        "sent",
        "delivered",
        "dropped_link_down",
        "sent_by_kind",
        "delivered_by_kind",
        "dropped_by_kind",
    )

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped_link_down = 0
        self.sent_by_kind: Dict[str, int] = {}
        self.delivered_by_kind: Dict[str, int] = {}
        self.dropped_by_kind: Dict[str, int] = {}

    def note_sent(self, kind: str) -> None:
        self.sent += 1
        by_kind = self.sent_by_kind
        by_kind[kind] = by_kind.get(kind, 0) + 1

    def note_delivered(self, kind: str) -> None:
        self.delivered += 1
        by_kind = self.delivered_by_kind
        by_kind[kind] = by_kind.get(kind, 0) + 1

    def note_dropped(self, kind: str) -> None:
        self.dropped_link_down += 1
        by_kind = self.dropped_by_kind
        by_kind[kind] = by_kind.get(kind, 0) + 1

    def snapshot(self) -> Dict[str, object]:
        """All counters — totals and per-kind dicts — as one copy."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped_link_down": self.dropped_link_down,
            "sent_by_kind": dict(self.sent_by_kind),
            "delivered_by_kind": dict(self.delivered_by_kind),
            "dropped_by_kind": dict(self.dropped_by_kind),
        }


class ChannelLayer:
    """All directed FIFO channels of the network."""

    def __init__(
        self,
        sim: Simulator,
        topology: DynamicTopology,
        bounds: TimeBounds,
        rng,
        deliver: DeliverFn,
        trace: Optional[TraceLog] = None,
        per_message: bool = False,
    ) -> None:
        """
        Args:
            sim: the shared event engine.
            topology: consulted at send and delivery time for link existence.
            bounds: supplies the message-delay distribution.
            rng: a ``random.Random`` used for delay jitter.
            deliver: callback invoked as ``deliver(src, dst, message)``
                when a message arrives at a live link endpoint.
            trace: optional trace log (disabled logs cost nothing).
            per_message: schedule one engine event per message (the
                legacy path) instead of using per-link delivery queues.
                Same deliveries, same timestamps; exists for equivalence
                testing and benchmarking.
        """
        self._sim = sim
        self._topology = topology
        self._bounds = bounds
        self._rng = rng
        self._deliver = deliver
        self._trace = live_trace(trace)
        self.per_message = per_message
        # send() runs once per message hop, so its collaborators are
        # pre-resolved: bound methods and the delay distribution's
        # parameters (the inline draw below reproduces ``rng.uniform``
        # bit for bit: ``a + (b - a) * random()``).
        self._has_link = topology.has_link
        self._claim_seq = sim.claim_seq
        self._rng_random = rng.random
        if bounds.min_delay_fraction >= 1.0:
            self._delay_floor: Optional[float] = None
        else:
            self._delay_floor = bounds.min_message_delay
        self._delay_span = bounds.nu - bounds.min_message_delay
        self._nu = bounds.nu
        self._last_arrival: Dict[Tuple[int, int], float] = {}
        # A link that breaks and re-forms is a *new* link in the paper's
        # model (fresh fork, fresh doorway state).  Incarnation counters
        # keep messages from a dead incarnation out of the new one.
        self._incarnation: Dict[Tuple[int, int], int] = {}
        # Fast path state: per-directed-link pending deliveries and the
        # single scheduled event currently covering each queue's head.
        self._queues: Dict[Tuple[int, int], Deque[_QueueEntry]] = {}
        self._inflight: Dict[Tuple[int, int], object] = {}
        # Bumped on every link_down; lets a running drain notice that a
        # delivery callback invalidated its link/incarnation snapshot.
        self._mutations = 0
        #: Optional delay override hook (set post-construction by the
        #: exploration subsystem): ``delay_source(src, dst, message)``
        #: returns the per-hop delay, replacing the rng draw.  The
        #: FIFO clamp still applies, so controlled delays keep per-link
        #: delivery order well-defined.  ``None`` (the default) costs
        #: one attribute test per send.
        self.delay_source: Optional[Callable[[int, int, Message], float]] = None
        # Sharded mode: destinations hosted on another shard, plus the
        # callback that forwards a finalized transmission to the mailbox
        # plane.  ``None`` (unsharded) costs one ``is not None`` test
        # per send.
        self._remote_nodes = None
        self._remote_send: Optional[
            Callable[[int, int, Message, float], None]
        ] = None
        self.stats = ChannelStats()

    def bind_remote(
        self,
        remote_nodes,
        forward: Callable[[int, int, Message, float], None],
    ) -> None:
        """Route sends addressed to ``remote_nodes`` through ``forward``.

        The sharded engine passes the shard's ghost-node set (live — new
        ghosts become routable as they appear) and its outbox append.
        The local send half (delay draw, FIFO clamp, stats, trace) runs
        exactly as for a local message; only delivery happens remotely,
        via :meth:`receive_remote` on the owning shard.
        """
        self._remote_nodes = remote_nodes
        self._remote_send = forward

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, message: Message) -> None:
        """Send one message over the (src, dst) link.

        Raises:
            TopologyError: if src and dst are not currently neighbors.
                Protocol code only ever talks to its neighbor set, so a
                non-neighbor send is a protocol bug worth failing fast on.
        """
        if not self._has_link(src, dst):
            raise TopologyError(
                f"send on non-existent link {src}->{dst} "
                f"(message {message.kind})"
            )
        sim = self._sim
        delay_source = self.delay_source
        floor_delay = self._delay_floor
        if delay_source is not None:
            delay = delay_source(src, dst, message)
        elif floor_delay is None:
            delay = self._nu
        else:
            delay = floor_delay + self._delay_span * self._rng_random()
        arrival = sim._now + delay
        key = (src, dst)
        last = self._last_arrival
        floor = last.get(key)
        if floor is not None and arrival <= floor:
            arrival = floor + TIME_EPSILON
        last[key] = arrival
        remote = self._remote_nodes
        if remote is not None and dst in remote:
            stats = self.stats
            stats.sent += 1
            kind = message.kind
            sent_by_kind = stats.sent_by_kind
            sent_by_kind[kind] = sent_by_kind.get(kind, 0) + 1
            if self._trace is not None:
                self._trace.record(sim._now, "msg.send", src, dst=dst, kind=kind)
            self._remote_send(src, dst, message, arrival)
            return
        incarnation = self._incarnation.get(
            key if src < dst else (dst, src), 0
        )
        stats = self.stats
        stats.sent += 1
        kind = message.kind
        sent_by_kind = stats.sent_by_kind
        sent_by_kind[kind] = sent_by_kind.get(kind, 0) + 1
        if self._trace is not None:
            self._trace.record(sim._now, "msg.send", src, dst=dst, kind=kind)
        if self.per_message:
            sim.schedule_at(arrival, self._arrive, src, dst, message, incarnation)
            return
        seq = self._claim_seq()
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = deque()
        queue.append((arrival, (arrival, _NORMAL, seq), message, incarnation))
        if key not in self._inflight:
            self._inflight[key] = sim.schedule_at(
                arrival, self._drain, src, dst, seq=seq
            )

    def broadcast(self, src: int, neighbors, message: Message) -> None:
        """Send the same message to every node in ``neighbors``.

        The paper's "broadcast" is a local broadcast to the current
        neighbor set; we model it as unicasts (each with its own delay),
        which is the standard conservative interpretation for an
        asynchronous MANET and only weakens timing, never FIFO-ness.

        Fan-out order is ascending node id.  Callers on the hot path
        (the link layer) pass the topology's presorted neighbor tuple;
        any other iterable is sorted here.
        """
        if type(neighbors) is not tuple:
            neighbors = sorted(neighbors)
        send = self.send
        for dst in neighbors:
            send(src, dst, message)

    # ------------------------------------------------------------------
    def link_down(self, a: int, b: int) -> None:
        """Forget FIFO state for a destroyed link (both directions).

        Queued messages are dropped on the spot: both directions'
        deques are emptied (counted per kind) and the covering events
        lazily cancelled, leaving no dead shells in the heap.  On the
        legacy path the scheduled per-message events still fire and are
        discarded by :meth:`_arrive` via the incarnation check.
        """
        for key in ((a, b), (b, a)):
            self._last_arrival.pop(key, None)
            queue = self._queues.pop(key, None)
            if queue:
                self._discard_queue(key, queue)
            event = self._inflight.get(key)
            if isinstance(event, ScheduledEvent):
                event.cancel()
                del self._inflight[key]
            # A _DRAINING marker stays: the active drain owns the slot
            # and will reschedule or release it when it unwinds.
        link = self._link_id(a, b)
        self._incarnation[link] = self._incarnation.get(link, 0) + 1
        self._mutations += 1

    def pending_messages(self) -> int:
        """Messages currently queued on the fast path (0 when legacy)."""
        return sum(len(q) for q in self._queues.values())

    @staticmethod
    def _link_id(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def _discard_queue(self, key: Tuple[int, int], queue: Deque[_QueueEntry]) -> None:
        """Drop every queued entry of a dead link (consumes the deque)."""
        src, dst = key
        trace = self._trace
        now = self._sim.now
        while queue:
            _, _, message, _ = queue.popleft()
            self.stats.note_dropped(message.kind)
            if trace is not None:
                trace.record(now, "msg.drop", src, dst=dst, kind=message.kind)

    # ------------------------------------------------------------------
    def _drain(self, src: int, dst: int) -> None:
        """Deliver the head of one link queue, then run ahead.

        Fires at the head entry's (arrival, seq); after delivering it,
        keeps delivering subsequent entries while their keys precede the
        engine's next live event and the active deadline, advancing the
        clock in between.  Reschedules itself for the next entry's
        arrival (with that entry's seq ticket) when it has to stop.

        This is the hottest loop in the library, so it works on
        snapshots that stay valid for the whole batch and are refreshed
        only when something observable changed:

        * the run-ahead *barrier* (the engine's next live event key) is
          recomputed only when the engine's push marker moved (a push,
          timer arm, or wheel release may have introduced an earlier
          key) — deliveries that schedule nothing reuse it;
        * link existence and incarnation are snapshotted once and
          refreshed only when :meth:`link_down` ran during a delivery
          (tracked by the mutation counter);
        * the clock is advanced by direct assignment — monotonicity is
          guaranteed by the FIFO clamp plus the ``arrival > now`` guard,
          which is exactly what ``Simulator.advance_clock`` validates.
        """
        key = (src, dst)
        # Guard the in-flight slot so a hypothetical same-link send from
        # inside a delivery callback cannot schedule a second drain.
        self._inflight[key] = _DRAINING
        queue = self._queues.get(key)
        sim = self._sim
        stats = self.stats
        delivered_by_kind = stats.delivered_by_kind
        deliver = self._deliver
        trace = self._trace
        deadline = sim._deadline  # constant for the duration of run()
        link_id = self._link_id(src, dst)
        link_ok = self._topology.has_link(src, dst)
        current_inc = self._incarnation.get(link_id, 0)
        mutations = self._mutations
        marker = -1  # force the first barrier computation
        barrier = None
        while queue:
            arrival, entry_key, message, incarnation = queue[0]
            if arrival > sim._now:
                # Run ahead only while nothing scheduled (and no run
                # deadline or stop request) precedes this delivery.
                if sim._stopped:
                    break
                if deadline is not None and arrival > deadline:
                    break
                if sim._push_marker != marker:
                    barrier = sim.next_live_key()
                    # Snapshot after: next_live_key can release wheel
                    # timers into the queue, bumping the marker itself.
                    marker = sim._push_marker
                if barrier is not None and barrier < entry_key:
                    break
                sim._now = arrival
            queue.popleft()
            if not link_ok or incarnation != current_inc:
                stats.note_dropped(message.kind)
                if trace is not None:
                    trace.record(
                        sim._now, "msg.drop", src, dst=dst, kind=message.kind
                    )
                continue
            kind = message.kind
            stats.delivered += 1
            delivered_by_kind[kind] = delivered_by_kind.get(kind, 0) + 1
            if trace is not None:
                trace.record(sim._now, "msg.recv", dst, src=src, kind=kind)
            deliver(src, dst, message)
            if mutations != self._mutations:
                # A delivery tore a link down (possibly ours, clearing
                # the queue out from under us): refresh every snapshot.
                queue = self._queues.get(key, queue)
                link_ok = self._topology.has_link(src, dst)
                current_inc = self._incarnation.get(link_id, 0)
                mutations = self._mutations
        if queue:
            head = queue[0]
            self._inflight[key] = sim.schedule_at(
                head[0], self._drain, src, dst, seq=head[1][2]
            )
        else:
            self._inflight.pop(key, None)
            self._queues.pop(key, None)

    # ------------------------------------------------------------------
    def receive_remote(self, src: int, dst: int, message: Message) -> None:
        """Deliver one cross-shard message at its (already reached)
        arrival time.

        The sending shard ran the full send half; this is the delivery
        half, scheduled through ``Simulator.ingest`` on the owning
        shard.  Link existence is checked here, at delivery time: the
        link view may have changed during the window (either side moved
        or crashed out), and a missing link drops the message exactly
        like the in-shard paths do.  No incarnation check is needed —
        a link that died and re-formed across the barrier is a fresh
        link whose existence test already decides correctly.
        """
        if not self._topology.has_link(src, dst):
            self.stats.note_dropped(message.kind)
            if self._trace is not None:
                self._trace.record(
                    self._sim.now, "msg.drop", src, dst=dst, kind=message.kind
                )
            return
        self.stats.note_delivered(message.kind)
        if self._trace is not None:
            self._trace.record(
                self._sim.now, "msg.recv", dst, src=src, kind=message.kind
            )
        self._deliver(src, dst, message)

    # ------------------------------------------------------------------
    def _arrive(self, src: int, dst: int, message: Message, incarnation: int) -> None:
        """Legacy per-message delivery event."""
        stale = incarnation != self._incarnation.get(self._link_id(src, dst), 0)
        if stale or not self._topology.has_link(src, dst):
            self.stats.note_dropped(message.kind)
            if self._trace is not None:
                self._trace.record(
                    self._sim.now, "msg.drop", src, dst=dst, kind=message.kind
                )
            return
        self.stats.note_delivered(message.kind)
        if self._trace is not None:
            self._trace.record(
                self._sim.now, "msg.recv", dst, src=src, kind=message.kind
            )
        self._deliver(src, dst, message)
