"""Reliable FIFO bounded-delay message channels.

One :class:`ChannelLayer` serves the whole network.  Each *directed*
link (src, dst) is a FIFO queue: deliveries on a link are clamped to be
strictly increasing in time even when a later message draws a smaller
random delay.  Delays are bounded by ``nu`` per the paper's model.

Reliability caveat that the paper shares: a link only carries messages
while it exists.  If the link goes down (an endpoint moved) while a
message is in flight, the message is dropped — the algorithms must (and
do) tolerate this, because the paper destroys per-link state (forks, L[]
entries) on link failure.  Messages to crashed nodes are delivered into
the void (the crashed node ignores everything), matching silent crashes.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import TopologyError
from repro.net.messages import Message
from repro.net.topology import DynamicTopology
from repro.sim.clock import TIME_EPSILON, TimeBounds
from repro.sim.engine import Simulator
from repro.sim.trace import TraceLog

DeliverFn = Callable[[int, int, Message], None]


class ChannelStats:
    """Message accounting, broken down by message kind."""

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped_link_down = 0
        self.by_kind: Dict[str, int] = {}

    def note_sent(self, kind: str) -> None:
        self.sent += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    def snapshot(self) -> Dict[str, int]:
        """Copy of the per-kind send counters."""
        return dict(self.by_kind)


class ChannelLayer:
    """All directed FIFO channels of the network."""

    def __init__(
        self,
        sim: Simulator,
        topology: DynamicTopology,
        bounds: TimeBounds,
        rng,
        deliver: DeliverFn,
        trace: Optional[TraceLog] = None,
    ) -> None:
        """
        Args:
            sim: the shared event engine.
            topology: consulted at send and delivery time for link existence.
            bounds: supplies the message-delay distribution.
            rng: a ``random.Random`` used for delay jitter.
            deliver: callback invoked as ``deliver(src, dst, message)``
                when a message arrives at a live link endpoint.
            trace: optional trace log.
        """
        self._sim = sim
        self._topology = topology
        self._bounds = bounds
        self._rng = rng
        self._deliver = deliver
        self._trace = trace
        self._last_arrival: Dict[Tuple[int, int], float] = {}
        # A link that breaks and re-forms is a *new* link in the paper's
        # model (fresh fork, fresh doorway state).  Incarnation counters
        # keep messages from a dead incarnation out of the new one.
        self._incarnation: Dict[Tuple[int, int], int] = {}
        self.stats = ChannelStats()

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, message: Message) -> None:
        """Send one message over the (src, dst) link.

        Raises:
            TopologyError: if src and dst are not currently neighbors.
                Protocol code only ever talks to its neighbor set, so a
                non-neighbor send is a protocol bug worth failing fast on.
        """
        if not self._topology.has_link(src, dst):
            raise TopologyError(
                f"send on non-existent link {src}->{dst} "
                f"(message {message.kind})"
            )
        delay = self._bounds.draw_message_delay(self._rng)
        arrival = self._sim.now + delay
        key = (src, dst)
        floor = self._last_arrival.get(key)
        if floor is not None and arrival <= floor:
            arrival = floor + TIME_EPSILON
        self._last_arrival[key] = arrival
        incarnation = self._incarnation.get(self._link_id(src, dst), 0)
        self.stats.note_sent(message.kind)
        if self._trace is not None:
            self._trace.record(
                self._sim.now, "msg.send", src, dst=dst, kind=message.kind
            )
        self._sim.schedule_at(arrival, self._arrive, src, dst, message, incarnation)

    def broadcast(self, src: int, neighbors, message: Message) -> None:
        """Send the same message to every node in ``neighbors``.

        The paper's "broadcast" is a local broadcast to the current
        neighbor set; we model it as unicasts (each with its own delay),
        which is the standard conservative interpretation for an
        asynchronous MANET and only weakens timing, never FIFO-ness.
        """
        for dst in sorted(neighbors):
            self.send(src, dst, message)

    # ------------------------------------------------------------------
    def link_down(self, a: int, b: int) -> None:
        """Forget FIFO state for a destroyed link (both directions).

        In-flight messages on the link are implicitly dropped: their
        delivery events still fire but :meth:`_arrive` discards them
        because the link no longer exists or carries a newer incarnation.
        """
        self._last_arrival.pop((a, b), None)
        self._last_arrival.pop((b, a), None)
        key = self._link_id(a, b)
        self._incarnation[key] = self._incarnation.get(key, 0) + 1

    @staticmethod
    def _link_id(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a < b else (b, a)

    # ------------------------------------------------------------------
    def _arrive(self, src: int, dst: int, message: Message, incarnation: int) -> None:
        stale = incarnation != self._incarnation.get(self._link_id(src, dst), 0)
        if stale or not self._topology.has_link(src, dst):
            self.stats.dropped_link_down += 1
            if self._trace is not None:
                self._trace.record(
                    self._sim.now, "msg.drop", src, dst=dst, kind=message.kind
                )
            return
        self.stats.delivered += 1
        if self._trace is not None:
            self._trace.record(
                self._sim.now, "msg.recv", dst, src=src, kind=message.kind
            )
        self._deliver(src, dst, message)
