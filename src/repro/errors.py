"""Exception hierarchy for the repro library.

All exceptions raised deliberately by the library derive from
:class:`ReproError`, so callers can catch library failures without
catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """A problem in the discrete-event engine (bad schedule, reentrancy...)."""


class ConfigurationError(ReproError):
    """An experiment or network configuration is invalid."""


class TopologyError(ReproError):
    """An operation referenced a node or link that does not exist."""


class ProtocolError(ReproError):
    """An algorithm reached a state forbidden by the paper's protocol."""


class TraceTruncatedError(ReproError):
    """An analysis needed trace records that a capacity bound evicted.

    Raised instead of silently returning wrong intervals/latencies when
    a capped :class:`repro.sim.trace.TraceLog` dropped records the
    analysis depends on.
    """


class SafetyViolation(ReproError):
    """The local mutual exclusion invariant was violated.

    Raised by :class:`repro.metrics.safety.SafetyMonitor` when two
    neighboring nodes are observed eating simultaneously.  This is the
    single most important failure mode of the reproduction: it should
    never occur in a correct run.
    """

    def __init__(self, time: float, node_a: int, node_b: int) -> None:
        self.time = time
        self.node_a = node_a
        self.node_b = node_b
        super().__init__(
            f"local mutual exclusion violated at t={time:.6f}: "
            f"neighbors {node_a} and {node_b} are both eating"
        )
