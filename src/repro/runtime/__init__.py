"""Runtime: binds algorithms to the simulator and drives workloads.

* :class:`~repro.runtime.node.NodeHarness` — one per node; implements
  the :class:`~repro.core.base.NodeServices` contract for its algorithm
  and the link layer's handler contract.
* :class:`~repro.runtime.app.HungerWorkload` /
  :class:`~repro.runtime.app.ScriptedHunger` — the "external
  application" of Section 3.2 that flips nodes thinking -> hungry.
* :class:`~repro.runtime.failures.CrashInjector` — schedules silent
  crashes.
* :class:`~repro.runtime.simulation.Simulation` /
  :class:`~repro.runtime.simulation.ScenarioConfig` — one-call facade
  that assembles topology, channels, mobility, workload, metrics and a
  safety monitor into a runnable experiment.
"""

from repro.runtime.app import HungerWorkload, ScriptedHunger
from repro.runtime.failures import CrashInjector
from repro.runtime.node import NodeHarness
from repro.runtime.simulation import ScenarioConfig, Simulation, SimulationResult

__all__ = [
    "CrashInjector",
    "HungerWorkload",
    "NodeHarness",
    "ScenarioConfig",
    "ScriptedHunger",
    "Simulation",
    "SimulationResult",
]
