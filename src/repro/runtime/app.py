"""Workloads: the "external application" of Section 3.2.

The paper leaves hungry arrivals to an unspecified application; the
harness provides two:

* :class:`HungerWorkload` — stochastic think times (the standard
  benchmark workload), optionally saturating (think time zero), with an
  optional cap on critical-section entries per node;
* :class:`ScriptedHunger` — exact hungry times per node, for scenario
  reproductions and tests.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runtime.node import NodeHarness
from repro.sim.engine import Simulator


class HungerWorkload:
    """Poisson-ish think/eat cycling for every attached node.

    Per-node ("workload", node_id) substreams are *not* materialized at
    attach time: a memoized ``random.Random`` costs ~2.5 KB, and a
    city-scale run attaches hundreds of thousands of nodes of which
    many never finish a single critical section.  The attach-time
    initial-delay draw instead comes from one reusable scratch RNG
    seeded with the substream's seed (``uniform`` consumes exactly one
    underlying ``random()`` call), and the memoized stream is created
    lazily at a node's first ``_on_done_eating`` — fast-forwarded past
    that one attach draw — so every value drawn is bit-identical to
    the eager scheme.
    """

    def __init__(
        self,
        sim: Simulator,
        rng_source,
        think_range: Tuple[float, float] = (1.0, 5.0),
        initial_delay_range: Tuple[float, float] = (0.0, 1.0),
        max_entries: Optional[int] = None,
    ) -> None:
        lo, hi = think_range
        if not 0 <= lo <= hi:
            raise ConfigurationError(f"bad think range {think_range}")
        ilo, ihi = initial_delay_range
        if not 0 <= ilo <= ihi:
            raise ConfigurationError(
                f"bad initial delay range {initial_delay_range}"
            )
        self._sim = sim
        self._rng_source = rng_source
        self.think_range = (lo, hi)
        self.initial_delay_range = (ilo, ihi)
        self.max_entries = max_entries
        self._entries: Dict[int, int] = {}
        # Reusable scratch RNG for attach-time draws (re-seeded per
        # node); the memoized per-node substream appears lazily in
        # _on_done_eating.
        self._scratch = random.Random()

    def attach(self, harness: NodeHarness) -> None:
        """Start driving a node (schedules its first hunger)."""
        harness.on_done_eating = self._on_done_eating
        rng = self._scratch
        rng.seed(self._rng_source.stream_seed("workload", harness.node_id))
        delay = rng.uniform(*self.initial_delay_range)
        self._sim.schedule(delay, harness.become_hungry)

    def attach_all(self, harnesses: Iterable[NodeHarness]) -> None:
        """Attach every node at once, deferring the draws to run start.

        Per-node attach work is pure RNG arithmetic — derive the
        substream seed, seed the scratch RNG, draw the initial delay —
        plus one schedule call, and at city scale it dominates
        ``Simulation`` construction.  Since it only *schedules* events,
        the whole loop rides the engine's startup hook: it runs right
        before the first event pops, drawing the exact values
        per-node :meth:`attach` would, with the heap holding the same
        event set when execution starts (see
        :meth:`repro.sim.engine.Simulator.defer_startup`).
        """
        nodes = list(harnesses)
        self._sim.defer_startup(lambda: self._attach_now(nodes))

    def _attach_now(self, nodes: List[NodeHarness]) -> None:
        on_done = self._on_done_eating
        scratch = self._scratch
        seed = scratch.seed
        uniform = scratch.uniform
        ilo, ihi = self.initial_delay_range
        stream_seed = self._rng_source.stream_seed
        schedule = self._sim.schedule
        for harness in nodes:
            harness.on_done_eating = on_done
            seed(stream_seed("workload", harness.node_id))
            schedule(uniform(ilo, ihi), harness.become_hungry)

    def entries(self, node_id: int) -> int:
        """Completed critical sections for one node."""
        return self._entries.get(node_id, 0)

    def _on_done_eating(self, harness: NodeHarness) -> None:
        count = self._entries.get(harness.node_id, 0) + 1
        self._entries[harness.node_id] = count
        if self.max_entries is not None and count >= self.max_entries:
            return
        source = self._rng_source
        fresh = not source.has_stream("workload", harness.node_id)
        rng = source.stream("workload", harness.node_id)
        if fresh:
            # First materialization: skip the single random() call the
            # attach-time initial-delay draw consumed via the scratch
            # RNG, so the sequence continues exactly where the eager
            # per-node stream would be.
            rng.random()
        think = rng.uniform(*self.think_range)
        self._sim.schedule(think, harness.become_hungry)


class ScriptedHunger:
    """Exact per-node hungry times (for scenario benchmarks)."""

    def __init__(self, sim: Simulator, schedule: Dict[int, Iterable[float]]) -> None:
        self._sim = sim
        self._schedule: Dict[int, List[float]] = {
            node: sorted(times) for node, times in schedule.items()
        }

    def attach(self, harness: NodeHarness) -> None:
        for time in self._schedule.get(harness.node_id, []):
            self._sim.schedule_at(time, harness.become_hungry)
