"""Workloads: the "external application" of Section 3.2.

The paper leaves hungry arrivals to an unspecified application; the
harness provides two:

* :class:`HungerWorkload` — stochastic think times (the standard
  benchmark workload), optionally saturating (think time zero), with an
  optional cap on critical-section entries per node;
* :class:`ScriptedHunger` — exact hungry times per node, for scenario
  reproductions and tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runtime.node import NodeHarness
from repro.sim.engine import Simulator


class HungerWorkload:
    """Poisson-ish think/eat cycling for every attached node."""

    def __init__(
        self,
        sim: Simulator,
        rng_source,
        think_range: Tuple[float, float] = (1.0, 5.0),
        initial_delay_range: Tuple[float, float] = (0.0, 1.0),
        max_entries: Optional[int] = None,
    ) -> None:
        lo, hi = think_range
        if not 0 <= lo <= hi:
            raise ConfigurationError(f"bad think range {think_range}")
        ilo, ihi = initial_delay_range
        if not 0 <= ilo <= ihi:
            raise ConfigurationError(
                f"bad initial delay range {initial_delay_range}"
            )
        self._sim = sim
        self._rng_source = rng_source
        self.think_range = (lo, hi)
        self.initial_delay_range = (ilo, ihi)
        self.max_entries = max_entries
        self._entries: Dict[int, int] = {}

    def attach(self, harness: NodeHarness) -> None:
        """Start driving a node (schedules its first hunger)."""
        harness.on_done_eating = self._on_done_eating
        rng = self._rng_source.stream("workload", harness.node_id)
        delay = rng.uniform(*self.initial_delay_range)
        self._sim.schedule(delay, harness.become_hungry)

    def entries(self, node_id: int) -> int:
        """Completed critical sections for one node."""
        return self._entries.get(node_id, 0)

    def _on_done_eating(self, harness: NodeHarness) -> None:
        count = self._entries.get(harness.node_id, 0) + 1
        self._entries[harness.node_id] = count
        if self.max_entries is not None and count >= self.max_entries:
            return
        rng = self._rng_source.stream("workload", harness.node_id)
        think = rng.uniform(*self.think_range)
        self._sim.schedule(think, harness.become_hungry)


class ScriptedHunger:
    """Exact per-node hungry times (for scenario benchmarks)."""

    def __init__(self, sim: Simulator, schedule: Dict[int, Iterable[float]]) -> None:
        self._sim = sim
        self._schedule: Dict[int, List[float]] = {
            node: sorted(times) for node, times in schedule.items()
        }

    def attach(self, harness: NodeHarness) -> None:
        for time in self._schedule.get(harness.node_id, []):
            self._sim.schedule_at(time, harness.become_hungry)
