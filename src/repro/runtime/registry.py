"""Algorithm registry: protocol names -> node-algorithm factories.

The simulation builder resolves a config's ``algorithm`` string here.
Factories receive a :class:`BuildContext` (network-wide facts decided
at build time: n, delta, optional initial coloring, the shared oracle)
and return a per-node constructor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.baselines.centralized import CentralizedOracle, OracleScheduler
from repro.baselines.chandy_misra import ChandyMisra
from repro.baselines.choy_singh import ChoySingh, legal_coloring
from repro.baselines.ordered_ids import OrderedIds
from repro.core.algorithm1 import Algorithm1
from repro.core.algorithm2 import Algorithm2
from repro.core.base import LocalMutexAlgorithm, NodeServices
from repro.core.coloring.greedy import GreedyColoring
from repro.core.coloring.linial import LinialColoring
from repro.errors import ConfigurationError
from repro.net.topology import DynamicTopology


@dataclass
class BuildContext:
    """Facts a factory may need, fixed at build time."""

    topology: DynamicTopology
    n: int
    delta: int
    initial_colors: Optional[Dict[int, int]] = None
    oracle: Optional[OracleScheduler] = None
    #: Shared random stream for randomized protocol components.
    rng: object = None


NodeFactory = Callable[[NodeServices], LocalMutexAlgorithm]
RegistryEntry = Callable[[BuildContext], NodeFactory]


def _alg1_greedy(ctx: BuildContext) -> NodeFactory:
    coloring = GreedyColoring()
    return lambda node: Algorithm1(node, coloring, ctx.initial_colors)


def _alg1_linial(ctx: BuildContext) -> NodeFactory:
    coloring = LinialColoring(id_space=max(ctx.n, 1), delta=max(ctx.delta, 1))
    return lambda node: Algorithm1(node, coloring, ctx.initial_colors)


def _alg1_random(ctx: BuildContext) -> NodeFactory:
    import random

    from repro.core.coloring.randomized import RandomizedColoring

    rng = ctx.rng if ctx.rng is not None else random.Random(0)
    coloring = RandomizedColoring(delta=max(ctx.delta, 1), rng=rng)
    return lambda node: Algorithm1(node, coloring, ctx.initial_colors)


def _alg2(ctx: BuildContext) -> NodeFactory:
    return Algorithm2


def _chandy_misra(ctx: BuildContext) -> NodeFactory:
    return ChandyMisra


def _ordered_ids(ctx: BuildContext) -> NodeFactory:
    return OrderedIds


def _choy_singh(ctx: BuildContext) -> NodeFactory:
    colors = ctx.initial_colors or legal_coloring(ctx.topology)
    return lambda node: ChoySingh(node, colors)


def _alg2_nonotify(ctx: BuildContext) -> NodeFactory:
    from repro.core.ablations import Algorithm2NoNotify

    return Algorithm2NoNotify


def _alg1_noreturn(ctx: BuildContext) -> NodeFactory:
    from repro.core.ablations import Algorithm1NoReturnPath

    coloring = GreedyColoring()
    return lambda node: Algorithm1NoReturnPath(
        node, coloring, ctx.initial_colors
    )


def _alg1_nodoorway(ctx: BuildContext) -> NodeFactory:
    from repro.core.ablations import Algorithm1NoDoorways

    colors = ctx.initial_colors or legal_coloring(ctx.topology)
    return lambda node: Algorithm1NoDoorways(node, colors)


def _alg1_selforg(ctx: BuildContext) -> NodeFactory:
    from repro.core.ablations import Algorithm1SelfOrganizing

    coloring = GreedyColoring()
    return lambda node: Algorithm1SelfOrganizing(
        node, coloring, ctx.initial_colors
    )


def _oracle(ctx: BuildContext) -> NodeFactory:
    if ctx.oracle is None:
        ctx.oracle = OracleScheduler(ctx.topology)
    scheduler = ctx.oracle
    return lambda node: CentralizedOracle(node, scheduler)


def _global_oracle(ctx: BuildContext) -> NodeFactory:
    scheduler = OracleScheduler(ctx.topology, global_exclusion=True)
    return lambda node: CentralizedOracle(node, scheduler)


def _token_mutex(ctx: BuildContext) -> NodeFactory:
    from repro.baselines.token_mutex import RaymondToken, spanning_tree

    parents = spanning_tree(ctx.topology)
    return lambda node: RaymondToken(node, parents)


ALGORITHMS: Dict[str, RegistryEntry] = {
    "alg1-greedy": _alg1_greedy,
    "alg1-linial": _alg1_linial,
    "alg1-random": _alg1_random,
    "alg2": _alg2,
    "chandy-misra": _chandy_misra,
    "ordered-ids": _ordered_ids,
    "choy-singh": _choy_singh,
    "oracle": _oracle,
    "global-oracle": _global_oracle,
    "token-mutex": _token_mutex,
    # Ablations and extensions (see repro.core.ablations).
    "alg2-nonotify": _alg2_nonotify,
    "alg1-noreturn": _alg1_noreturn,
    "alg1-nodoorway": _alg1_nodoorway,
    "alg1-selforg": _alg1_selforg,
}


def resolve(name: str, ctx: BuildContext) -> NodeFactory:
    """Resolve an algorithm name to a per-node factory."""
    entry = ALGORITHMS.get(name)
    if entry is None:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        )
    return entry(ctx)
