"""Crash injection.

The paper's failure model: a node fails by crashing silently — it stops
executing everything and never moves again.  Other nodes receive no
indication (there are no failure detectors in this model; compare the
discussion of Pike et al. in Chapter 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.net.linklayer import LinkLayer
from repro.runtime.node import NodeHarness
from repro.sim.engine import Simulator
from repro.sim.events import ScheduledEvent


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled crash."""

    time: float
    node_id: int


class CrashInjector:
    """Schedules silent crashes against the link layer and harnesses."""

    def __init__(
        self,
        sim: Simulator,
        linklayer: LinkLayer,
        harnesses: Dict[int, NodeHarness],
        metrics=None,
        mobility=None,
    ) -> None:
        self._sim = sim
        self._linklayer = linklayer
        self._harnesses = harnesses
        self._metrics = metrics
        self._mobility = mobility
        self.crashes: List[CrashEvent] = []
        #: Engine handles, aligned with :attr:`crashes` (retimeable).
        #: Stored as ``(event, generation)`` tokens: a pooling engine
        #: recycles fired shells, so a bare handle held across events
        #: can come back to life as someone else's event — the captured
        #: generation stamp detects that (see repro.sim.events).
        self._events: List[Tuple[ScheduledEvent, int]] = []

    def schedule(self, time: float, node_id: int) -> None:
        """Crash ``node_id`` at the given virtual time."""
        event = CrashEvent(time, node_id)
        self.crashes.append(event)
        # A crash is a retimeable deadline — exactly the churn profile
        # the timer wheel exists for (apply_control cancels + reissues).
        handle = self._sim.schedule_timer_at(time, self._crash, node_id)
        self._events.append((handle, handle.generation))

    def schedule_all(self, plan: List[Tuple[float, int]]) -> None:
        """Schedule a whole crash plan of (time, node_id) pairs."""
        for time, node_id in plan:
            self.schedule(time, node_id)

    def apply_control(self, controller) -> None:
        """Re-time every pending crash through a choice controller.

        ``controller.crash_time(node_id, base)`` returns the new crash
        time for a crash planned at ``base`` (the exploration
        subsystem's crash-timing choice point).  Already-fired crashes
        are left alone; pending ones are cancelled and rescheduled, and
        :attr:`crashes` is updated so locality reports and run
        summaries see the times that actually apply.  Returned times
        are clamped to "not before now" — a controller cannot schedule
        into the past.
        """
        now = self._sim.now
        for index, (handle, generation) in enumerate(self._events):
            # A generation mismatch means the shell was recycled by the
            # event pool after our crash fired — same outcome as a dead
            # handle: nothing left to retime.
            if handle.generation != generation or not handle.pending:
                continue
            planned = self.crashes[index]
            retimed = max(now, float(
                controller.crash_time(planned.node_id, planned.time)
            ))
            if retimed == planned.time:
                continue
            handle.cancel()
            self.crashes[index] = CrashEvent(retimed, planned.node_id)
            fresh = self._sim.schedule_timer_at(
                retimed, self._crash, planned.node_id
            )
            self._events[index] = (fresh, fresh.generation)

    def crashed_nodes(self) -> List[int]:
        """Node ids crashed so far (in crash order)."""
        return [
            e.node_id
            for e in self.crashes
            if self._harnesses[e.node_id].crashed
        ]

    def _crash(self, node_id: int) -> None:
        self._linklayer.crash(node_id)
        self._harnesses[node_id].crash()
        if self._mobility is not None:
            # Pin a mid-flight node at its exact crash position (the
            # crashed node itself is already silenced above, so only its
            # neighbors observe any resulting link changes).
            self._mobility.note_crash(node_id)
        if self._metrics is not None:
            self._metrics.note_crash(node_id, self._sim.now)
