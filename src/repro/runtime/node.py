"""The node harness: state, timers and wiring for one node.

Implements both sides of the node boundary: the
:class:`~repro.core.base.NodeServices` the algorithm calls down into,
and the link layer's handler contract events come up through.  Also the
single place node state transitions happen, so the metrics collector
and safety monitor see every change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.core.base import LocalMutexAlgorithm
from repro.core.states import NodeState, check_transition
from repro.net.messages import Message
from repro.sim.clock import TimeBounds
from repro.sim.timers import Timer
from repro.sim.trace import NULL_TRACE, TraceLog, live_trace

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.linklayer import LinkLayer
    from repro.runtime.interface import Runtime


class NodeHarness:
    """Host for one node's algorithm instance.

    Slotted, and lazy about its two per-node conveniences (the eating
    timer and the eating RNG substream): a city-scale run constructs
    hundreds of thousands of harnesses at bootstrap, most of which
    reach ``start_eating`` much later or never — deferring the
    ``Timer`` and the ~2.5 KB ``random.Random`` to first use keeps
    construction O(cheap) per node without changing any draw sequence
    (substream seeds derive from the stream name alone).

    The harness is runtime-agnostic: ``sim`` is anything satisfying the
    :class:`~repro.runtime.interface.Runtime` protocol and
    ``linklayer`` anything with the :class:`~repro.net.linklayer.LinkLayer`
    query/send surface, so the same harness (and the algorithm inside
    it) runs under the discrete-event simulator or a live transport.
    """

    __slots__ = (
        "node_id",
        "_sim",
        "_linklayer",
        "_bounds",
        "_trace",
        "_trace_log",
        "_eat_rng",
        "_rng_source",
        "_metrics",
        "_safety",
        "probes",
        "_state",
        "_eat_timer",
        "_eat_script",
        "crashed",
        "algorithm",
        "on_done_eating",
    )

    def __init__(
        self,
        node_id: int,
        sim: "Runtime",
        linklayer: "LinkLayer",
        bounds: TimeBounds,
        trace: TraceLog,
        eat_rng,
        metrics=None,
        safety=None,
        probes=None,
        rng_source=None,
    ) -> None:
        self.node_id = node_id
        self._sim = sim
        self._linklayer = linklayer
        self._bounds = bounds
        # Hot-path handle: None unless tracing is live, so every record
        # site below is one pointer test when tracing is off (mirroring
        # the ``self._metrics is not None`` guards).  The full log stays
        # reachable through the ``trace`` property for algorithm code.
        self._trace = live_trace(trace)
        self._trace_log = trace if trace is not None else NULL_TRACE
        # Either a ready-made eating RNG, or (with ``eat_rng=None`` and
        # a ``rng_source``) the source to pull the memoized
        # ("eating", node_id) substream from on first use.
        self._eat_rng = eat_rng
        self._rng_source = rng_source
        self._metrics = metrics
        self._safety = safety
        #: Shared telemetry probes, or None when the run is
        #: uninstrumented.  Protocol components pick this up at
        #: construction time (``getattr(node, "probes", None)``), so
        #: fakes without the attribute still work.
        self.probes = probes
        self._state = NodeState.THINKING
        self._eat_timer: Optional[Timer] = None
        self._eat_script: Optional[List[float]] = None
        self.crashed = False
        self.algorithm: Optional[LocalMutexAlgorithm] = None
        #: Workload hook: called when the node finishes eating.
        self.on_done_eating: Optional[Callable[["NodeHarness"], None]] = None

    def bind(self, algorithm: LocalMutexAlgorithm) -> None:
        """Attach the algorithm instance (exactly once, at build time)."""
        self.algorithm = algorithm

    # ------------------------------------------------------------------
    # NodeServices (the algorithm's view)
    # ------------------------------------------------------------------
    @property
    def state(self) -> NodeState:
        return self._state

    @property
    def now(self) -> float:
        return self._sim.now

    @property
    def sim(self) -> "Runtime":
        return self._sim

    @property
    def trace(self) -> TraceLog:
        return self._trace_log

    def neighbors(self):
        return self._linklayer.neighbors(self.node_id)

    def sorted_neighbors(self):
        return self._linklayer.sorted_neighbors(self.node_id)

    def send(self, dst: int, message: Message) -> None:
        self._linklayer.send(self.node_id, dst, message)

    def broadcast(self, message: Message) -> None:
        self._linklayer.broadcast(self.node_id, message)

    def start_eating(self) -> None:
        """Algorithm grants the critical section."""
        check_transition(self._state, NodeState.EATING)
        self._state = NodeState.EATING
        if self._trace is not None:
            self._trace.record(self._sim.now, "cs.enter", self.node_id)
        if self._metrics is not None:
            self._metrics.note_eat_start(self.node_id, self._sim.now)
        if self._safety is not None:
            self._safety.note_eating_start(self.node_id, self._sim.now)
        timer = self._eat_timer
        if timer is None:
            timer = self._eat_timer = Timer(self._sim, self._finish_eating)
        script = self._eat_script
        if script:
            timer.start(script.pop(0))
            return
        rng = self._eat_rng
        if rng is None:
            rng = self._eat_rng = self._rng_source.stream(
                "eating", self.node_id
            )
        timer.start(self._bounds.draw_eating_time(rng))

    def script_eating(self, durations) -> None:
        """Replace random eating times with a fixed per-entry schedule.

        Used by replay: the i-th critical-section entry eats for
        ``durations[i]`` exactly; once the script is exhausted the
        harness falls back to the usual RNG draw.  Must be installed
        before the first entry to keep draw sequences aligned.
        """
        self._eat_script = [float(d) for d in durations]

    def demote_to_hungry(self) -> None:
        """Mobility preemption: eating -> hungry (Algorithm 3 Line 50)."""
        check_transition(self._state, NodeState.HUNGRY)
        self._eat_timer.cancel()
        self._state = NodeState.HUNGRY
        if self._trace is not None:
            self._trace.record(self._sim.now, "cs.demoted", self.node_id)
        if self._metrics is not None:
            self._metrics.note_demotion(self.node_id, self._sim.now)

    # ------------------------------------------------------------------
    # Application-driven transitions
    # ------------------------------------------------------------------
    def become_hungry(self) -> None:
        """The external application requests the critical section."""
        if self.crashed or self._state is not NodeState.THINKING:
            return
        check_transition(self._state, NodeState.HUNGRY)
        self._state = NodeState.HUNGRY
        if self._trace is not None:
            self._trace.record(self._sim.now, "app.hungry", self.node_id)
        if self._metrics is not None:
            self._metrics.note_hungry(self.node_id, self._sim.now)
        assert self.algorithm is not None, "harness not bound to an algorithm"
        self.algorithm.on_hungry()

    def _finish_eating(self) -> None:
        if self.crashed:
            return
        assert self.algorithm is not None
        # The exit code (Line 5 "when state is set to thinking") runs as
        # part of leaving the critical section.
        self.algorithm.on_exit_cs()
        check_transition(self._state, NodeState.THINKING)
        self._state = NodeState.THINKING
        if self._trace is not None:
            self._trace.record(self._sim.now, "cs.exit", self.node_id)
        if self._metrics is not None:
            self._metrics.note_think(self.node_id, self._sim.now)
        if self.on_done_eating is not None:
            self.on_done_eating(self)

    # ------------------------------------------------------------------
    # Link-layer handler contract
    # ------------------------------------------------------------------
    def on_message(self, src: int, message: Message) -> None:
        if self.crashed:
            return
        assert self.algorithm is not None
        self.algorithm.on_message(src, message)

    def on_link_up(self, peer: int, moving: bool) -> None:
        if self.crashed:
            return
        assert self.algorithm is not None
        self.algorithm.on_link_up(peer, moving)

    def on_link_down(self, peer: int) -> None:
        if self.crashed:
            return
        assert self.algorithm is not None
        self.algorithm.on_link_down(peer)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Silently stop: no further timers, messages or transitions."""
        self.crashed = True
        if self._eat_timer is not None:
            self._eat_timer.cancel()
        if self._trace is not None:
            self._trace.record(self._sim.now, "node.crashed", self.node_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NodeHarness {self.node_id} {self._state.value}"
            f"{' CRASHED' if self.crashed else ''}>"
        )
