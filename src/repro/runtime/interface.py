"""The runtime boundary: what node-level code may assume about time.

:class:`~repro.runtime.node.NodeHarness`, :class:`~repro.sim.timers.Timer`
and every algorithm built on them historically took the discrete-event
:class:`~repro.sim.engine.Simulator` directly, but the only things they
ever ask of it are a clock and a restartable deadline.  This module
names that contract so the same node code runs against the simulator
*or* a wall-clock runtime (:mod:`repro.live`) without modification:

* :class:`TimerHandle` — the cancel/pending/time surface of
  :class:`~repro.sim.events.ScheduledEvent`;
* :class:`Runtime` — ``now`` plus the two scheduling entry points.

Both protocols are structural (``runtime_checkable``): the simulator
already satisfies them as-is, and test fakes keep working unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, runtime_checkable

from repro.sim.events import EventPriority


@runtime_checkable
class TimerHandle(Protocol):
    """Handle returned by :meth:`Runtime.schedule_timer`."""

    @property
    def pending(self) -> bool:
        """True while the deadline is armed and has not fired."""
        ...

    @property
    def time(self) -> float:
        """Absolute (virtual) fire time the deadline was armed for."""
        ...

    def cancel(self) -> None:
        """Disarm; a cancelled deadline never fires."""
        ...


@runtime_checkable
class Runtime(Protocol):
    """The clock-and-deadlines surface node-level code schedules against.

    The simulator implements this with virtual time and a pending-event
    queue; :class:`repro.live.runtime.WallClockRuntime` implements it
    with wall-clock timers on an asyncio loop.  ``priority`` exists for
    the simulator's deterministic tie-breaking; live runtimes accept and
    ignore it (wall-clock instants never tie).
    """

    @property
    def now(self) -> float:
        """Current (virtual) time."""
        ...

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: EventPriority = EventPriority.NORMAL,
    ) -> Optional[TimerHandle]:
        """Run ``callback(*args)`` once, ``delay`` from now."""
        ...

    def schedule_timer(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: EventPriority = EventPriority.NORMAL,
    ) -> TimerHandle:
        """Arm a high-churn (likely cancelled or restarted) deadline."""
        ...
