"""One-call simulation assembly and execution.

:class:`ScenarioConfig` describes an experiment declaratively;
:class:`Simulation` builds the full stack — simulator, topology,
channels, link layer, mobility, node harnesses, algorithm instances,
workload, crash injector, metrics, safety monitor — wires everything,
and runs it.  This is the facade the examples and benchmarks use.
"""

from __future__ import annotations

import gc
import statistics
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector
from repro.metrics.locality import LocalityReport, measure_failure_locality
from repro.metrics.safety import SafetyMonitor
from repro.mobility.base import MobilityController, MobilityModel
from repro.net.channel import ChannelLayer
from repro.net.geometry import Point
from repro.net.linklayer import LinkLayer
from repro.net.topology import DynamicTopology
from repro.obs.probes import build_probes
from repro.obs.profiler import EngineProfiler
from repro.obs.registry import MetricRegistry
from repro.obs.report import RunReport
from repro.obs.watchdog import StarvationWatchdog
from repro.runtime.app import HungerWorkload, ScriptedHunger
from repro.runtime.failures import CrashInjector
from repro.runtime.node import NodeHarness
from repro.runtime.registry import BuildContext, resolve
from repro.sim.clock import TimeBounds
from repro.sim.engine import Simulator
from repro.sim.partition import ShardContext
from repro.sim.rng import RandomSource
from repro.sim.trace import TraceLog

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-Unix platforms
    _resource = None


def peak_rss_kb() -> Optional[int]:
    """This process's peak resident set size in KiB (None off-Unix)."""
    if _resource is None:  # pragma: no cover
        return None
    rss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux but bytes on macOS.
    if sys.platform == "darwin":  # pragma: no cover
        rss //= 1024
    return int(rss)


@dataclass
class ScenarioConfig:
    """Declarative description of one simulation run."""

    #: Node positions; node ids are the list indices.
    positions: Sequence[Point]
    radio_range: float = 1.0
    #: Registry name (alg1-greedy, alg1-linial, alg2, chandy-misra,
    #: ordered-ids, choy-singh, oracle) or a registry-style callable
    #: taking a :class:`~repro.runtime.registry.BuildContext` and
    #: returning a per-node factory.
    algorithm: object = "alg2"
    seed: int = 0
    bounds: TimeBounds = field(default_factory=TimeBounds)
    # Workload (stochastic unless a script is given).
    think_range: Tuple[float, float] = (1.0, 5.0)
    initial_delay_range: Tuple[float, float] = (0.0, 1.0)
    max_entries: Optional[int] = None
    scripted_hunger: Optional[Dict[int, List[float]]] = None
    #: Per-node eating durations, consumed in CS-entry order (replay of
    #: recorded live runs).  Nodes not listed — and entries past the end
    #: of a node's list — fall back to the usual RNG draw.
    scripted_eating: Optional[Dict[int, List[float]]] = None
    #: Scripted link churn: ``[time, op, a, b, mover]`` rows with op in
    #: ("up", "down") and ``mover`` the moving endpoint id (or -1 when
    #: neither endpoint moves).  Applied verbatim at the given times,
    #: independent of node positions — the replay path for live-run
    #: recordings, where the recorded churn is the ground truth.
    link_script: Optional[List[Sequence[Any]]] = None
    #: Per-node mobility model factory (node_id -> model or None).
    mobility_factory: Optional[Callable[[int], Optional[MobilityModel]]] = None
    mobility_step: float = 0.25
    #: Use the legacy fixed-interval step timer for movement instead of
    #: kinetic link prediction.  Same destinations, same per-seed
    #: determinism, identical link sets whenever the network is
    #: quiescent; exists for equivalence testing and for scenarios that
    #: want positions materialized every ``mobility_step`` of travel.
    mobility_fixed_step: bool = False
    #: Crash plan: (time, node_id) pairs.
    crashes: List[Tuple[float, int]] = field(default_factory=list)
    trace: bool = False
    strict_safety: bool = True
    #: Use the legacy one-event-per-message channel scheduling instead
    #: of per-link delivery queues.  Deliveries are identical; exists
    #: for equivalence testing and benchmarking.
    channel_per_message: bool = False
    #: Recycle fired/cancelled engine event shells through a free-list
    #: pool instead of allocating one per schedule.  Same events, same
    #: order, bit-identical reports; ``pooling=False`` exists for
    #: equivalence testing and for isolating use-after-release reports.
    pooling: bool = True
    #: Engine pending-set discipline: ``"ladder"`` (adaptive ladder
    #: queue + timer wheel, the O(1) default) or ``"heap"`` (the binary
    #: heap kept as the equivalence oracle).  Same events, same order,
    #: bit-identical reports either way.
    scheduler: str = "ladder"
    #: Optional pre-assigned legal coloring (alg1 variants / choy-singh).
    initial_colors: Optional[Dict[int, int]] = None
    #: Override the delta the Linial procedure is built for (mobile runs
    #: where degrees can exceed the initial maximum).
    delta_override: Optional[int] = None
    #: Build the metric registry + protocol probes for this run.  Off by
    #: default: the protocol hot paths then hold None and pay nothing.
    telemetry: bool = False
    #: Attach the wall-clock engine profiler (the run report gains a
    #: non-deterministic ``profile`` block).
    profile: bool = False
    #: Starvation-watchdog threshold in virtual time (None = watchdog
    #: off).  A node hungry longer than this triggers one structured
    #: warning per hungry interval.
    watchdog: Optional[float] = None
    #: How often the watchdog samples, in virtual time.
    watchdog_period: float = 5.0

    def __post_init__(self) -> None:
        if not self.positions:
            raise ConfigurationError("scenario needs at least one node")
        if self.watchdog is not None and self.watchdog <= 0:
            raise ConfigurationError(
                f"watchdog threshold must be > 0: {self.watchdog}"
            )
        if self.scheduler not in ("ladder", "heap"):
            raise ConfigurationError(
                f"unknown scheduler discipline: {self.scheduler!r} "
                "(expected 'ladder' or 'heap')"
            )
        for row in self.link_script or ():
            if len(row) != 5 or row[1] not in ("up", "down"):
                raise ConfigurationError(
                    f"link script rows are [time, 'up'|'down', a, b, mover]:"
                    f" {row!r}"
                )


@dataclass
class SimulationResult:
    """What a finished (or paused) run exposes."""

    config: ScenarioConfig
    duration: float
    metrics: MetricsCollector
    messages_sent: int
    messages_by_kind: Dict[str, int]
    starved: List[int]
    cs_entries: int
    #: ``ChannelStats.snapshot()`` at run end.
    channel: Dict[str, Any] = field(default_factory=dict)
    #: ``Simulator.stats()`` at run end.
    engine: Dict[str, Any] = field(default_factory=dict)
    #: ``MetricRegistry.snapshot()`` — empty when telemetry was off.
    probes: Dict[str, Any] = field(default_factory=dict)
    #: Structured starvation warnings (empty when the watchdog was off).
    watchdog_warnings: List[Dict[str, Any]] = field(default_factory=list)
    #: Failure-locality summary when the scenario had a crash plan.
    locality: Optional[Dict[str, Any]] = None
    #: Wall-clock engine profile when ``config.profile`` was set.
    profile: Optional[Dict[str, Any]] = None
    #: Host-resource footprint: wall_time_s, events_per_sec, peak_rss_kb
    #: (always collected; surfaced in the report only under
    #: ``config.profile`` because it is non-deterministic).
    resources: Optional[Dict[str, Any]] = None

    @property
    def response_times(self) -> List[float]:
        return self.metrics.response_times()

    def messages_per_cs(self) -> Optional[float]:
        if self.cs_entries == 0:
            return None
        return self.messages_sent / self.cs_entries

    def report(self) -> RunReport:
        """This run as a schema-versioned, JSON-ready :class:`RunReport`.

        Everything except the optional ``profile`` block derives from
        virtual time and deterministic counters, so fixed-seed runs
        yield bit-identical reports.
        """
        # Local import: config_io imports this module for ScenarioConfig.
        from repro.harness.config_io import config_to_dict

        try:
            config_dict = config_to_dict(self.config)
        except ConfigurationError:
            # Callable algorithm entries don't serialize; keep a stub so
            # the report still says what ran.
            config_dict = {
                "algorithm": getattr(
                    self.config.algorithm, "__name__",
                    str(self.config.algorithm),
                ),
                "seed": self.config.seed,
                "nodes": len(self.config.positions),
            }
        # Wall-clock throughput keys are non-deterministic, and the
        # scheduler ops counters differ between (bit-identical) queue
        # disciplines by design; the report's engine block keeps only
        # the virtual-time counters so fixed-seed reports stay
        # bit-identical across disciplines too.  Queue behaviour is
        # surfaced via the ``engine.sched_ops`` probe when telemetry is
        # on (a probe is discipline-scoped observability, not part of
        # the protocol-level outcome contract).
        engine = dict(self.engine)
        engine.pop("wall_time_s", None)
        engine.pop("events_per_sec", None)
        engine.pop("scheduler", None)
        profiling = getattr(self.config, "profile", False)
        return RunReport(
            config=config_dict,
            duration=self.duration,
            response=self._response_summary(),
            nodes=self._node_summary(),
            channel=dict(self.channel),
            engine=engine,
            probes=dict(self.probes),
            starved=list(self.starved),
            locality=self.locality,
            warnings=list(self.watchdog_warnings),
            profile=self.profile,
            resources=(
                dict(self.resources)
                if profiling and self.resources is not None
                else None
            ),
        )

    def openmetrics(self) -> str:
        """This run's probe snapshot in OpenMetrics text format.

        Sharded runs (which stash per-shard registry snapshots under
        ``resources["shard_probes"]``) render one family per metric
        with a ``shard="k"`` label per sample; single-engine runs
        render unlabeled samples.  Empty-registry runs (telemetry off)
        still render a valid (sample-free) exposition ending in
        ``# EOF``.
        """
        from repro.obs.openmetrics import render_openmetrics

        shard_probes = (self.resources or {}).get("shard_probes")
        if shard_probes:
            return render_openmetrics(shards=shard_probes)
        return render_openmetrics(self.probes)

    # ------------------------------------------------------------------
    def _response_summary(self) -> Dict[str, Any]:
        times = self.metrics.response_times()
        summary: Dict[str, Any] = {
            "count": len(times),
            "cs_entries": self.cs_entries,
            "after_demotion": sum(
                1 for s in self.metrics.samples if s.after_demotion
            ),
        }
        if times:
            ordered = sorted(times)
            summary["mean"] = statistics.fmean(times)
            summary["median"] = statistics.median(ordered)
            summary["p95"] = ordered[
                min(len(ordered) - 1, int(0.95 * len(ordered)))
            ]
            summary["min"] = ordered[0]
            summary["max"] = ordered[-1]
            summary["stdev"] = (
                statistics.pstdev(times) if len(times) > 1 else 0.0
            )
        return summary

    def _node_summary(self) -> Dict[str, Any]:
        per_node = {
            str(node): {
                "hungry": c.hungry_count,
                "cs_entries": c.cs_entries,
                "cs_completions": c.cs_completions,
                "demotions": c.demotions,
            }
            for node, c in sorted(self.metrics.counters.items())
        }
        return {
            "count": len(self.config.positions),
            "crashed": {
                str(node): time
                for node, time in sorted(self.metrics.crashed.items())
            },
            "per_node": per_node,
        }


class Simulation:
    """A fully wired simulation instance.

    With a :class:`~repro.sim.partition.ShardContext` the instance hosts
    one spatial shard of a larger run: the topology holds the shard's
    owned nodes plus ghost mirrors of boundary-adjacent remote nodes,
    while harnesses, workload, mobility models and crash injections
    exist only for owned nodes.  Sends addressed to a ghost are diverted
    into the shard outbox for the coordinating engine to route.  Every
    per-node RNG substream is keyed by node id alone, so an owned node
    behaves identically regardless of which shard hosts it.
    """

    def __init__(
        self,
        config: ScenarioConfig,
        shard: Optional[ShardContext] = None,
    ) -> None:
        # City-scale construction allocates a handful of container
        # objects per node, essentially all of which stay live, so
        # cyclic-GC passes during the build scan an ever-growing live
        # set and reclaim nothing — ~40% of construction wall time at
        # n=100k.  Suspend collection for the build (restored even on
        # failure); the deferred scan afterwards is paid once.
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            self._build(config, shard)
        finally:
            if was_enabled:
                gc.enable()

    def _build(
        self,
        config: ScenarioConfig,
        shard: Optional[ShardContext],
    ) -> None:
        self.config = config
        self.shard = shard
        self.sim = Simulator(
            pooling=config.pooling, scheduler=config.scheduler
        )
        # Already-recorded scheduler ops, per counter key: run() records
        # only the delta into the live registry so repeated run() calls
        # (paused runs, sharded windows) never double-count.
        self._sched_ops_recorded: Dict[str, int] = {}
        self.rng = RandomSource(config.seed)
        self.trace = TraceLog(enabled=config.trace)
        self.bounds = config.bounds

        if shard is None:
            local_ids: List[int] = list(range(len(config.positions)))
            member_ids = local_ids
        else:
            local_ids = sorted(shard.local_nodes)
            member_ids = sorted(shard.local_nodes | shard.ghost_nodes)

        # --- network substrate -------------------------------------
        self.topology = DynamicTopology(radio_range=config.radio_range)
        # Bulk insertion: O(n + links) instead of a per-arrival link
        # scan; nobody consumes construction-time LinkDiffs.
        self.topology.add_nodes(
            (node_id, config.positions[node_id]) for node_id in member_ids
        )
        self.linklayer = LinkLayer(self.sim, self.topology, trace=self.trace)
        self.channel = ChannelLayer(
            self.sim,
            self.topology,
            self.bounds,
            self.rng.stream("channel"),
            deliver=self.linklayer.deliver,
            trace=self.trace,
            per_message=config.channel_per_message,
        )
        self.linklayer.bind_channel(self.channel)
        if shard is not None:
            outbox = shard.outbox

            def _to_outbox(src: int, dst: int, message: object,
                           arrival: float) -> None:
                outbox.append((src, dst, message, arrival))

            self.channel.bind_remote(shard.ghost_nodes, _to_outbox)

        # --- metrics & monitors -------------------------------------
        self.metrics = MetricsCollector()
        #: Live registry + probes only when the scenario opted in; every
        #: component downstream then holds None and pays nothing.
        self.registry: Optional[MetricRegistry] = (
            MetricRegistry() if config.telemetry else None
        )
        self.probes = build_probes(self.registry)
        self.watchdog: Optional[StarvationWatchdog] = None
        if config.watchdog is not None:
            self.watchdog = StarvationWatchdog(
                self.sim,
                self.metrics,
                threshold=config.watchdog,
                period=config.watchdog_period,
                registry=self.registry,
            )
            self.watchdog.start()
        self.profiler: Optional[EngineProfiler] = None
        if config.profile:
            self.profiler = EngineProfiler()
            self.sim.attach_profiler(self.profiler)
        self.harnesses: Dict[int, NodeHarness] = {}
        self.safety = SafetyMonitor(
            self.topology, self.harnesses, strict=config.strict_safety
        )
        self.linklayer.observers.append(
            lambda kind, a, b: self.safety.on_link_event(kind, a, b, self.sim.now)
        )

        # --- nodes and algorithms -----------------------------------
        n = len(config.positions)
        delta = config.delta_override or max(1, self.topology.max_degree())
        self.context = BuildContext(
            topology=self.topology,
            n=n,
            delta=delta,
            initial_colors=config.initial_colors,
            rng=self.rng.stream("coloring"),
        )
        if callable(config.algorithm):
            factory = config.algorithm(self.context)
        else:
            factory = resolve(config.algorithm, self.context)
        for node_id in local_ids:
            harness = NodeHarness(
                node_id,
                self.sim,
                self.linklayer,
                self.bounds,
                self.trace,
                eat_rng=None,
                metrics=self.metrics,
                safety=self.safety,
                probes=self.probes,
                rng_source=self.rng,
            )
            harness.bind(factory(harness))
            if config.scripted_eating is not None:
                durations = config.scripted_eating.get(node_id)
                if durations:
                    harness.script_eating(durations)
            self.harnesses[node_id] = harness
            self.linklayer.register(node_id, harness)
        # Initial per-link protocol state (forks, priorities, colors).
        # Each node bootstraps all of its own link endpoints in one
        # bulk call over its ascending neighbor list — the same
        # per-peer insertion order the old interleaved per-link walk
        # produced, at half the iteration cost.  In shard mode a link
        # may reach a ghost endpoint, which has no harness here; its
        # owning shard bootstraps the same link from its side, and
        # every bootstrap_peer implementation decides initial ownership
        # from the two node ids alone, so both sides agree without
        # talking.
        harnesses = self.harnesses
        sorted_neighbors = self.topology.sorted_neighbors
        for a in self.topology.nodes():
            harness_a = harnesses.get(a)
            if harness_a is not None:
                harness_a.algorithm.bootstrap_peers(sorted_neighbors(a))

        # --- workload ------------------------------------------------
        if config.scripted_hunger is not None:
            self.workload = ScriptedHunger(self.sim, config.scripted_hunger)
            for harness in self.harnesses.values():
                self.workload.attach(harness)
        else:
            self.workload = HungerWorkload(
                self.sim,
                self.rng,
                think_range=config.think_range,
                initial_delay_range=config.initial_delay_range,
                max_entries=config.max_entries,
            )
            # Bulk attach defers the per-node RNG seeding to the first
            # engine run; the draws themselves are bit-identical.
            self.workload.attach_all(self.harnesses.values())

        # --- scripted link churn ------------------------------------
        # Recorded (live-run) churn replays verbatim: each row becomes
        # one engine event that forces the link state and emits the
        # same up/down indications the recording's nodes saw.
        for row in config.link_script or ():
            time, op, a, b, mover = row
            self.sim.schedule_at(
                float(time),
                self._apply_scripted_link,
                str(op),
                int(a),
                int(b),
                int(mover),
            )

        # --- mobility --------------------------------------------------
        self.mobility = MobilityController(
            self.sim,
            self.topology,
            self.linklayer,
            self.rng,
            step_length=config.mobility_step,
            trace=self.trace,
            probes=self.probes,
            fixed_step=config.mobility_fixed_step,
        )
        if config.mobility_factory is not None:
            for node_id in local_ids:
                model = config.mobility_factory(node_id)
                if model is not None:
                    self.mobility.attach(node_id, model)
            self.mobility.start()

        # --- failures --------------------------------------------------
        self.failures = CrashInjector(
            self.sim,
            self.linklayer,
            self.harnesses,
            metrics=self.metrics,
            mobility=self.mobility,
        )
        crash_plan = config.crashes
        if shard is not None:
            # A remote node's crash plays out on its owning shard; the
            # ghost here just stops emitting (frozen position, absorbed
            # messages), which is exactly what a silent crash looks like
            # from the outside.
            crash_plan = [
                (time, node_id)
                for time, node_id in crash_plan
                if node_id in shard.local_nodes
            ]
        self.failures.schedule_all(crash_plan)

    # ------------------------------------------------------------------
    def algorithm_of(self, node_id: int):
        """The algorithm instance running on one node."""
        return self.harnesses[node_id].algorithm

    def _apply_scripted_link(
        self, op: str, a: int, b: int, mover: int
    ) -> None:
        """Force one scripted link change and deliver its indications.

        ``mover`` (when >= 0) is marked moving for the duration of the
        event so the link layer assigns the same static/moving roles the
        recorded execution saw; role state is restored afterwards.
        """
        restore = mover >= 0 and not self.linklayer.is_moving(mover)
        if restore:
            self.linklayer.set_moving(mover, True)
        try:
            diff = self.topology.force_link(a, b, op == "up")
            if not diff.empty:
                self.linklayer.apply_diff(diff)
        finally:
            if restore:
                self.linklayer.set_moving(mover, False)

    def run(
        self,
        until: float,
        max_events: Optional[int] = None,
        starvation_threshold: Optional[float] = None,
    ) -> SimulationResult:
        """Run up to virtual time ``until`` and summarize.

        ``starvation_threshold`` classifies still-hungry nodes as
        starved in the result (default: 20% of the run length).
        """
        self.sim.run(until=until, max_events=max_events)
        threshold = (
            starvation_threshold
            if starvation_threshold is not None
            else 0.2 * until
        )
        locality: Optional[Dict[str, Any]] = None
        # Keyed on the *scheduled* crashes, not the config plan: a shard
        # whose local slice of the plan is empty has no crash to locate.
        if self.failures.crashes:
            locality = self.locality_report().to_dict()
        engine_stats = self.sim.stats()
        if self.registry is not None:
            self._record_sched_ops(engine_stats["scheduler"])
        resources = {
            "wall_time_s": engine_stats["wall_time_s"],
            "events_per_sec": engine_stats["events_per_sec"],
            "peak_rss_kb": peak_rss_kb(),
            # Operational view of the queue discipline; lives here (and
            # in the sched_ops probe) rather than in the deterministic
            # engine block because it differs between disciplines.
            "scheduler": dict(engine_stats["scheduler"]),
        }
        return SimulationResult(
            config=self.config,
            duration=self.sim.now,
            metrics=self.metrics,
            messages_sent=self.channel.stats.sent,
            messages_by_kind=dict(self.channel.stats.sent_by_kind),
            starved=self.metrics.starving(self.sim.now, threshold),
            cs_entries=self.metrics.total_cs_entries(),
            channel=self.channel.stats.snapshot(),
            engine=engine_stats,
            probes=(
                self.registry.snapshot() if self.registry is not None else {}
            ),
            watchdog_warnings=(
                self.watchdog.warning_dicts()
                if self.watchdog is not None
                else []
            ),
            locality=locality,
            profile=(
                self.profiler.summary() if self.profiler is not None else None
            ),
            resources=resources,
        )

    def _record_sched_ops(self, sched: Dict[str, Any]) -> None:
        """Mirror the engine's scheduler counters into the registry.

        Recorded as deltas against what earlier ``run()`` calls already
        recorded, so paused/windowed runs accumulate exactly once.  The
        counter family exists (at zero) even for an idle run, keeping
        the probe snapshot schema stable.
        """
        assert self.registry is not None
        counter = self.registry.counter(
            "engine.sched_ops",
            "scheduler queue operations by kind (discipline-dependent)",
        )
        recorded = self._sched_ops_recorded
        for key in (
            "enqueues", "dequeues", "cancelled", "compactions",
            "rung_spills", "wheel_arms", "wheel_cascades",
            "cancelled_in_place",
        ):
            value = sched[key]
            delta = value - recorded.get(key, 0)
            if delta:
                counter.inc(delta, key=key)
                recorded[key] = value

    # ------------------------------------------------------------------
    def locality_report(self, patience: Optional[float] = None) -> LocalityReport:
        """Failure-locality probe over this run (experiment E3).

        A node counts as *starved* when, at the end of the run, its
        current hungry interval has lasted longer than ``patience``
        (default: a quarter of the elapsed run).  A genuinely starved
        node stays hungry forever, so any sufficiently long run
        classifies it correctly; nodes that merely happen to be hungry
        at the final instant do not.
        """
        crash_times = [e.time for e in self.failures.crashes]
        if not crash_times:
            raise ConfigurationError("locality report needs a crash plan")
        first_crash = min(crash_times)
        if patience is None:
            patience = 0.25 * max(self.sim.now - first_crash, 1e-9)
        starved = set(self.metrics.starving(self.sim.now, patience))
        hungry_after = {
            s.node for s in self.metrics.samples if s.eating_at >= first_crash
        }
        hungry_after |= set(self.metrics.hungry_nodes())
        return measure_failure_locality(
            self.topology,
            crashed=[e.node_id for e in self.failures.crashes],
            hungry_after_crash=hungry_after,
            ate_after_crash=hungry_after - starved,
        )


def run_simulation(config: ScenarioConfig, until: float) -> SimulationResult:
    """Convenience: build and run a scenario in one call."""
    return Simulation(config).run(until=until)
